//! `tiger-coded`: a network-coded secondary-storage backend for the
//! Tiger reproduction.
//!
//! The paper's Tiger mirrors every block (§2.3); *Scheduling Advantages
//! of Network Coded Storage in Point-to-Multipoint Networks* (Ferner et
//! al., see PAPERS.md) predicts that replacing the mirror copy with an
//! MDS code shrinks blocking probability in correlated-demand regimes,
//! because a degraded or overloaded read can be served from *any* `k`
//! surviving pieces instead of the one disk holding the right mirror
//! piece. This crate supplies the coding machinery and placement; the
//! scheduling integration lives in `tiger-core` behind the
//! [`tiger_layout::Redundancy`] trait.
//!
//! - [`gf256`]: GF(2⁸) arithmetic with compile-time exp/log tables.
//! - [`rs::ReedSolomon`]: a systematic any-`k`-of-`n` erasure code.
//! - [`CodedPlacement`]: `2k` ring-declustered shards per block at the
//!   same `2×` storage cost as declustered mirroring, tolerating any
//!   `k` simultaneous disk failures.
//!
//! Everything is pure and deterministic — there is no RNG anywhere in
//! this crate — so coded runs stay bit-identical at any fleet thread
//! count.

pub mod gf256;
pub mod placement;
pub mod rs;

pub use placement::CodedPlacement;
pub use rs::{CodeError, ReedSolomon};
