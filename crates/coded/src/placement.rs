//! Ring-declustered shard placement for the coded backend.
//!
//! A block homed on disk `h` becomes `2k` shards (`k = decluster`) of
//! `ceil(block/k)` bytes: shard `j` lives on `disk_after(h, j)`, so shard
//! 0 sits in the *primary* region of the home disk (it is the first
//! systematic shard — a home read in coded mode is a shard-0 read) and
//! shards `1..2k` sit in the *secondary* regions of the next `2k − 1`
//! disks, exactly where `MirrorPlacement` puts mirror pieces.
//!
//! Total storage is `2k × ceil(B/k) = 2B` — the same two-copies cost as
//! declustered mirroring — but the loss window is qualitatively better:
//! a block dies only when *more than `k`* of its `2k` consecutive
//! holders die, so the scheme tolerates **any** `k` simultaneous disk
//! failures, where mirroring already loses data to 2 failures within
//! `decluster` ring positions (the differential tests below pin both
//! models against each other).

use tiger_layout::{DiskId, MirrorPiece, Redundancy, RedundancyMode, StripeConfig};
use tiger_sim::ByteSize;

/// Computes coded-shard placements for a striping configuration.
#[derive(Clone, Copy, Debug)]
pub struct CodedPlacement {
    cfg: StripeConfig,
}

impl CodedPlacement {
    /// Creates a placement helper for `cfg`. Requires `2 × decluster ≤
    /// num_disks` so a block's `2k` shards land on distinct disks, and
    /// `decluster ≤ 16` so shard indices fit the client's 32-bit piece
    /// mask.
    pub fn new(cfg: StripeConfig) -> Self {
        assert!(
            2 * cfg.decluster <= cfg.num_disks(),
            "coded redundancy needs 2*decluster ({}) <= num_disks ({})",
            2 * cfg.decluster,
            cfg.num_disks()
        );
        assert!(
            cfg.decluster <= 16,
            "coded shard indices must fit a 32-bit piece mask (decluster {} > 16)",
            cfg.decluster
        );
        CodedPlacement { cfg }
    }

    /// The underlying striping configuration.
    pub fn config(&self) -> StripeConfig {
        self.cfg
    }

    /// Data shards needed to reconstruct a block (`k = decluster`).
    pub fn k(&self) -> u32 {
        self.cfg.decluster
    }

    /// Total shards per block (`n = 2k`).
    pub fn n(&self) -> u32 {
        2 * self.cfg.decluster
    }

    /// Bytes per shard for a block of `block_size` bytes.
    pub fn shard_size(&self, block_size: ByteSize) -> ByteSize {
        block_size.div_u64_ceil(u64::from(self.k()))
    }

    /// The disk holding shard `j` of a block homed on `home`.
    pub fn shard_disk(&self, home: DiskId, shard: u32) -> DiskId {
        debug_assert!(shard < self.n());
        self.cfg.disk_after(home, shard)
    }

    /// Which shard `holder` stores for blocks homed on `home`, if any.
    pub fn shard_index(&self, holder: DiskId, home: DiskId) -> Option<u32> {
        let dist = self.cfg.ring_distance(home, holder);
        (dist < self.n()).then_some(dist)
    }

    /// Whether every block survives this set of failed disks: each home
    /// `h` needs at least `k` of the `2k` holders `[h, h+2k)` alive.
    pub fn survives_failures(&self, failed: &[DiskId]) -> bool {
        let n = self.n();
        (0..self.cfg.num_disks()).all(|h| {
            let home = DiskId(h);
            let lost = failed
                .iter()
                .filter(|&&f| self.cfg.ring_distance(home, f) < n)
                .count() as u32;
            n - lost.min(n) >= self.k()
        })
    }
}

impl Redundancy for CodedPlacement {
    fn mode(&self) -> RedundancyMode {
        RedundancyMode::Coded
    }

    /// Shard 0 is the primary extent.
    fn primary_size(&self, block_size: ByteSize) -> ByteSize {
        self.shard_size(block_size)
    }

    /// Shards `1..2k`, one per following disk, all shard-sized. Reuses
    /// the [`MirrorPiece`] shape — `piece` is the shard index.
    fn secondary_pieces(&self, home: DiskId, block_size: ByteSize) -> Vec<MirrorPiece> {
        let size = self.shard_size(block_size);
        (1..self.n())
            .map(|j| MirrorPiece {
                piece: j,
                disk: self.shard_disk(home, j),
                size,
            })
            .collect()
    }

    fn survives(&self, failed: &[DiskId]) -> bool {
        self.survives_failures(failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::{MirrorPlacement, Mirrored};
    use tiger_sim::SimRng;

    fn coded(cubs: u32, dpc: u32, d: u32) -> CodedPlacement {
        CodedPlacement::new(StripeConfig::new(cubs, dpc, d))
    }

    #[test]
    fn shards_follow_home_disk() {
        let p = coded(14, 4, 4);
        let pieces = p.secondary_pieces(DiskId(10), ByteSize::from_bytes(250_000));
        assert_eq!(pieces.len(), 7);
        for (i, piece) in pieces.iter().enumerate() {
            assert_eq!(piece.piece, i as u32 + 1);
            assert_eq!(piece.disk, DiskId(10 + 1 + i as u32));
            assert_eq!(piece.size, ByteSize::from_bytes(62_500));
        }
        assert_eq!(p.shard_index(DiskId(10), DiskId(10)), Some(0));
        assert_eq!(p.shard_index(DiskId(17), DiskId(10)), Some(7));
        assert_eq!(p.shard_index(DiskId(18), DiskId(10)), None);
    }

    #[test]
    fn storage_overhead_equals_mirroring() {
        // The ablation's precondition: both backends store 2 blocks per
        // block (coded exactly, mirroring exactly; shard padding only
        // appears when k does not divide the block size).
        let b = ByteSize::from_bytes(250_000);
        for d in [2u32, 4] {
            let c = coded(14, 4, d);
            let m = Mirrored::new(StripeConfig::new(14, 4, d));
            assert_eq!(c.bytes_per_block(b).as_bytes(), 2 * b.as_bytes());
            assert_eq!(m.bytes_per_block(b).as_bytes(), 2 * b.as_bytes());
        }
    }

    #[test]
    fn small_test_geometry_is_legal() {
        // The quick-scale system: 4 cubs × 1 disk, decluster 2 → 2k = 4
        // shards on 4 disks. This must stay constructible or the
        // ablation's coded arm dies.
        let p = coded(4, 1, 2);
        assert_eq!(p.n(), 4);
        assert_eq!(
            p.secondary_pieces(DiskId(3), ByteSize::from_bytes(100))
                .iter()
                .map(|x| x.disk)
                .collect::<Vec<_>>(),
            vec![DiskId(0), DiskId(1), DiskId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "coded redundancy needs")]
    fn rejects_rings_smaller_than_2k() {
        coded(3, 1, 2);
    }

    #[test]
    fn tolerates_any_k_failures() {
        // The headline loss-window difference: coded survives ANY k
        // simultaneous failures; mirroring already loses data to 2
        // failures within decluster distance. Exhaustive over pairs and
        // property-checked over larger random sets.
        let c = coded(14, 1, 4);
        let m = MirrorPlacement::new(StripeConfig::new(14, 1, 4));
        for a in 0..14u32 {
            for b in 0..14u32 {
                if a == b {
                    continue;
                }
                assert!(
                    c.survives(&[DiskId(a), DiskId(b)]),
                    "coded loses at 2 failures"
                );
                // Differential: wherever mirroring survives, so does coded.
                if !m.survives(&[DiskId(a), DiskId(b)]) {
                    assert!(c.survives(&[DiskId(a), DiskId(b)]));
                }
            }
        }
        tiger_sim::check::check("coded_survives_any_k", |rng: &mut SimRng| {
            let d = rng.gen_range(2..5u32);
            let cubs = rng.gen_range(2 * d..20u32);
            let c = CodedPlacement::new(StripeConfig::new(cubs, 1, d));
            // Any k distinct failures survive.
            let mut failed = Vec::new();
            while (failed.len() as u32) < d {
                let f = DiskId(rng.gen_range(0..cubs));
                if !failed.contains(&f) {
                    failed.push(f);
                }
            }
            assert!(c.survives(&failed), "k={d} failures {failed:?}");
        });
    }

    #[test]
    fn loses_data_past_k_consecutive_failures() {
        // k+1 consecutive failures starting at any h kill the block homed
        // at h (it keeps only k−1 of its 2k shards... precisely: loses
        // k+1 of 2k, keeping k−1 < k).
        let c = coded(14, 1, 4);
        for start in 0..14u32 {
            let failed: Vec<DiskId> = (0..5)
                .map(|i| c.config().disk_after(DiskId(start), i))
                .collect();
            assert!(!c.survives(&failed), "start {start}");
        }
    }

    #[test]
    fn survival_matches_window_count_model() {
        // Property: survives == "no 2k-window contains more than k
        // failures", cross-checked against a brute-force count.
        tiger_sim::check::check("coded_loss_window_model", |rng: &mut SimRng| {
            let d = rng.gen_range(2..4u32);
            let cubs = rng.gen_range(2 * d..16u32);
            let c = CodedPlacement::new(StripeConfig::new(cubs, 1, d));
            let count = rng.gen_range(0..=cubs);
            let mut failed = Vec::new();
            for _ in 0..count {
                let f = DiskId(rng.gen_range(0..cubs));
                if !failed.contains(&f) {
                    failed.push(f);
                }
            }
            let brute = (0..cubs).all(|h| {
                let lost = (0..2 * d)
                    .filter(|&j| failed.contains(&c.config().disk_after(DiskId(h), j)))
                    .count() as u32;
                2 * d - lost >= d
            });
            assert_eq!(c.survives(&failed), brute, "failed {failed:?}");
        });
    }
}
