//! A systematic MDS (any-`k`-of-`n`) erasure code over GF(256).
//!
//! Construction: take the `n × k` Vandermonde matrix `V[i][j] = αᵢʲ`
//! (rows indexed by shard, `αᵢ = i+1` so every evaluation point is
//! distinct and nonzero), and post-multiply by the inverse of its top
//! `k × k` block. The result `G = V · V₀⁻¹` still has every `k`-row
//! subset invertible (the MDS property survives column operations) and
//! its top `k` rows are the identity — so shards `0..k` are the data
//! verbatim (*systematic*) and shards `k..n` are parity. Decoding from
//! any `k` surviving shards inverts the corresponding `k` rows of `G`.
//!
//! Everything is deterministic and allocation-light; a 250 kB block at
//! `k = 2` encodes in a few hundred µs (see the `coded/encode_250k_k2n4`
//! micro-bench), noise next to the 40+ ms disk read that fetches it.

use crate::gf256;

/// Errors the codec can report. All of them are caller bugs or
/// impossible-geometry requests, but the decode path reports rather than
/// panics so a degraded read can fail soft.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodeError {
    /// `k` or `n` out of the supported range (`1 ≤ k`, `k ≤ n ≤ 255`).
    BadGeometry { k: u32, n: u32 },
    /// Fewer than `k` distinct shards were offered to `decode`.
    NotEnoughShards { have: usize, need: u32 },
    /// A shard index ≥ `n`, a duplicate index, or a shard whose length
    /// disagrees with the others.
    BadShard { index: u32 },
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::BadGeometry { k, n } => write!(f, "unsupported code geometry k={k} n={n}"),
            CodeError::NotEnoughShards { have, need } => {
                write!(f, "need {need} shards to decode, have {have}")
            }
            CodeError::BadShard { index } => write!(f, "bad shard index/length {index}"),
        }
    }
}

/// A systematic `k`-of-`n` Reed–Solomon code. Cheap to build (the
/// generator is `n × k` bytes); build once per system and reuse.
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    k: usize,
    n: usize,
    /// Row-major `n × k` generator; top `k` rows are the identity.
    gen: Vec<u8>,
}

/// Inverts a row-major `k × k` matrix over GF(256) by Gauss–Jordan.
/// Returns `None` when singular (never, for the matrices this crate
/// builds — kept as a checked path for the decode-from-arbitrary-rows
/// case).
fn invert(mat: &[u8], k: usize) -> Option<Vec<u8>> {
    let mut a = mat.to_vec();
    let mut inv = vec![0u8; k * k];
    for i in 0..k {
        inv[i * k + i] = 1;
    }
    for col in 0..k {
        // Find a pivot row at or below `col`.
        let pivot = (col..k).find(|&r| a[r * k + col] != 0)?;
        if pivot != col {
            for j in 0..k {
                a.swap(col * k + j, pivot * k + j);
                inv.swap(col * k + j, pivot * k + j);
            }
        }
        let p = a[col * k + col];
        let pinv = gf256::inv(p);
        for j in 0..k {
            a[col * k + j] = gf256::mul(a[col * k + j], pinv);
            inv[col * k + j] = gf256::mul(inv[col * k + j], pinv);
        }
        for r in 0..k {
            if r == col {
                continue;
            }
            let c = a[r * k + col];
            if c == 0 {
                continue;
            }
            for j in 0..k {
                let av = gf256::mul(c, a[col * k + j]);
                a[r * k + j] ^= av;
                let iv = gf256::mul(c, inv[col * k + j]);
                inv[r * k + j] ^= iv;
            }
        }
    }
    Some(inv)
}

impl ReedSolomon {
    /// Builds the code. `k ≥ 1`, `k ≤ n ≤ 255` (255 = number of nonzero
    /// evaluation points in GF(256)).
    pub fn new(k: u32, n: u32) -> Result<Self, CodeError> {
        if k == 0 || n < k || n > 255 {
            return Err(CodeError::BadGeometry { k, n });
        }
        let (k, n) = (k as usize, n as usize);
        // Vandermonde rows at points α_i = i + 1.
        let mut v = vec![0u8; n * k];
        for (i, row) in v.chunks_mut(k).enumerate() {
            let alpha = (i + 1) as u8;
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = gf256::pow(alpha, j as u32);
            }
        }
        let v0_inv = invert(&v[..k * k], k).expect("Vandermonde top block is invertible");
        // G = V · V₀⁻¹ (row by row).
        let mut gen = vec![0u8; n * k];
        for i in 0..n {
            for j in 0..k {
                let mut acc = 0u8;
                for t in 0..k {
                    acc ^= gf256::mul(v[i * k + t], v0_inv[t * k + j]);
                }
                gen[i * k + j] = acc;
            }
        }
        Ok(ReedSolomon { k, n, gen })
    }

    /// Data shards per block.
    pub fn k(&self) -> u32 {
        self.k as u32
    }

    /// Total shards per block.
    pub fn n(&self) -> u32 {
        self.n as u32
    }

    /// Shard length for a block of `block_len` bytes: `ceil(len / k)`,
    /// the last data shard zero-padded.
    pub fn shard_len(&self, block_len: usize) -> usize {
        block_len.div_ceil(self.k)
    }

    /// Encodes `block` into `n` shards of [`Self::shard_len`] bytes.
    /// Shards `0..k` are the (padded) data itself.
    pub fn encode(&self, block: &[u8]) -> Vec<Vec<u8>> {
        let sl = self.shard_len(block.len().max(1));
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(self.n);
        for j in 0..self.k {
            let mut s = vec![0u8; sl];
            let lo = (j * sl).min(block.len());
            let hi = ((j + 1) * sl).min(block.len());
            s[..hi - lo].copy_from_slice(&block[lo..hi]);
            shards.push(s);
        }
        for i in self.k..self.n {
            let mut s = vec![0u8; sl];
            for (j, data) in shards.iter().take(self.k).enumerate() {
                gf256::mul_acc(&mut s, data, self.gen[i * self.k + j]);
            }
            shards.push(s);
        }
        shards
    }

    /// Reconstructs the original `block_len` bytes from any `k` distinct
    /// shards given as `(shard_index, bytes)` pairs. Extra shards beyond
    /// `k` are ignored (the first `k` valid ones are used).
    pub fn decode(&self, shards: &[(u32, &[u8])], block_len: usize) -> Result<Vec<u8>, CodeError> {
        if shards.len() < self.k {
            return Err(CodeError::NotEnoughShards {
                have: shards.len(),
                need: self.k as u32,
            });
        }
        let sl = self.shard_len(block_len.max(1));
        let mut chosen: Vec<(usize, &[u8])> = Vec::with_capacity(self.k);
        for &(idx, data) in shards {
            if idx as usize >= self.n || data.len() != sl {
                return Err(CodeError::BadShard { index: idx });
            }
            if chosen.iter().any(|&(i, _)| i == idx as usize) {
                return Err(CodeError::BadShard { index: idx });
            }
            chosen.push((idx as usize, data));
            if chosen.len() == self.k {
                break;
            }
        }
        if chosen.len() < self.k {
            return Err(CodeError::NotEnoughShards {
                have: chosen.len(),
                need: self.k as u32,
            });
        }
        // Submatrix of G for the surviving rows; invert and apply.
        let mut sub = vec![0u8; self.k * self.k];
        for (r, &(i, _)) in chosen.iter().enumerate() {
            sub[r * self.k..(r + 1) * self.k]
                .copy_from_slice(&self.gen[i * self.k..(i + 1) * self.k]);
        }
        let sub_inv = invert(&sub, self.k).expect("any k rows of an MDS generator are independent");
        let mut block = vec![0u8; self.k * sl];
        for j in 0..self.k {
            let dst = &mut block[j * sl..(j + 1) * sl];
            for (r, &(_, data)) in chosen.iter().enumerate() {
                gf256::mul_acc(dst, data, sub_inv[j * self.k + r]);
            }
        }
        block.truncate(block_len);
        Ok(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_sim::SimRng;

    #[test]
    fn generator_is_systematic() {
        for (k, n) in [(1u32, 2u32), (2, 4), (4, 8), (5, 9)] {
            let rs = ReedSolomon::new(k, n).unwrap();
            let (k, _) = (k as usize, n as usize);
            for i in 0..k {
                for j in 0..k {
                    let want = u8::from(i == j);
                    assert_eq!(rs.gen[i * k + j], want, "k={k} gen[{i}][{j}]");
                }
            }
        }
    }

    #[test]
    fn geometry_limits_enforced() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(5, 4).is_err());
        assert!(ReedSolomon::new(4, 256).is_err());
        assert!(ReedSolomon::new(255, 255).is_ok());
    }

    #[test]
    fn roundtrip_from_every_k_subset() {
        // Exhaustive over subsets at the ablation geometry (2-of-4) and
        // the sosp97 geometry (4-of-8): every k-subset of shards decodes.
        for (k, n) in [(2u32, 4u32), (4, 8)] {
            let rs = ReedSolomon::new(k, n).unwrap();
            let block: Vec<u8> = (0..1013u32).map(|i| (i * 31 % 251) as u8).collect();
            let shards = rs.encode(&block);
            assert_eq!(shards.len(), n as usize);
            let sl = rs.shard_len(block.len());
            assert!(shards.iter().all(|s| s.len() == sl));
            for mask in 0u32..(1 << n) {
                if mask.count_ones() != k {
                    continue;
                }
                let subset: Vec<(u32, &[u8])> = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| (i, shards[i as usize].as_slice()))
                    .collect();
                let got = rs.decode(&subset, block.len()).unwrap();
                assert_eq!(got, block, "k={k} n={n} mask={mask:#x}");
            }
        }
    }

    #[test]
    fn decode_rejects_bad_inputs() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let block = vec![7u8; 100];
        let shards = rs.encode(&block);
        assert_eq!(
            rs.decode(&[(0, shards[0].as_slice())], 100),
            Err(CodeError::NotEnoughShards { have: 1, need: 2 })
        );
        assert_eq!(
            rs.decode(&[(0, shards[0].as_slice()), (9, shards[1].as_slice())], 100),
            Err(CodeError::BadShard { index: 9 })
        );
        assert_eq!(
            rs.decode(&[(0, shards[0].as_slice()), (0, shards[0].as_slice())], 100),
            Err(CodeError::BadShard { index: 0 })
        );
        let short = &shards[1][..10];
        assert_eq!(
            rs.decode(&[(0, shards[0].as_slice()), (1, short)], 100),
            Err(CodeError::BadShard { index: 1 })
        );
    }

    #[test]
    fn roundtrip_property_random_blocks_and_subsets() {
        tiger_sim::check::check("rs_roundtrip", |rng: &mut SimRng| {
            let k = rng.gen_range(1..6u32);
            let n = k + rng.gen_range(1..6u32);
            let rs = ReedSolomon::new(k, n).unwrap();
            let len = rng.gen_range(1..4096usize);
            let block: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect();
            let shards = rs.encode(&block);
            // Random k-subset via index shuffle.
            let mut idx: Vec<u32> = (0..n).collect();
            for i in (1..idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                idx.swap(i, j);
            }
            let subset: Vec<(u32, &[u8])> = idx[..k as usize]
                .iter()
                .map(|&i| (i, shards[i as usize].as_slice()))
                .collect();
            assert_eq!(rs.decode(&subset, len).unwrap(), block);
        });
    }

    #[test]
    fn equal_storage_overhead_at_n_equals_2k() {
        // The ablation's equal-overhead invariant: 2k shards of ceil(B/k)
        // bytes cost the same 2×B as a mirror copy (up to shard padding).
        let rs = ReedSolomon::new(2, 4).unwrap();
        let total: usize = rs.encode(&vec![0u8; 250_000]).iter().map(Vec::len).sum();
        assert_eq!(total, 2 * 250_000);
    }
}
