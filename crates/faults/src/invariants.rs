//! Pure invariant checks over fault plans and observed failure
//! declarations.
//!
//! The checks here are plain interval algebra — no system types — so the
//! core crate and the chaos runner can share them. The system-side
//! invariants that need live state (no double-delivered block, schedule
//! views within `maxVStateLead`, bounded loss window) live next to that
//! state; this module owns the one invariant that is purely a function of
//! the plan and the trace: **every deadman declaration must be justified
//! by a real communication stall**.

use tiger_sim::{SimDuration, SimTime};

use crate::plan::{FaultPlan, NodeSel, ProcessFault, Topology};

/// A merged, sorted set of half-open `[from, until)` intervals during
/// which some condition holds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Intervals {
    spans: Vec<(SimTime, SimTime)>,
}

impl Intervals {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `[from, until)`, merging with anything it touches.
    pub fn add(&mut self, from: SimTime, until: SimTime) {
        if until <= from {
            return;
        }
        self.spans.push((from, until));
        self.spans.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(self.spans.len());
        for &(f, u) in &self.spans {
            match merged.last_mut() {
                Some(last) if f <= last.1 => last.1 = last.1.max(u),
                _ => merged.push((f, u)),
            }
        }
        self.spans = merged;
    }

    /// Whether `[from, until)` lies entirely inside one merged span.
    /// An empty query interval (`until <= from`) is trivially covered.
    pub fn covers(&self, from: SimTime, until: SimTime) -> bool {
        if until <= from {
            return true;
        }
        self.spans.iter().any(|&(f, u)| f <= from && until <= u)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The merged spans, sorted.
    pub fn spans(&self) -> &[(SimTime, SimTime)] {
        &self.spans
    }
}

/// The intervals during which `cub` cannot get a ping through to
/// `observer`, according to `plan`: its crashes and power-domain cuts
/// (which stall it forever), its freeze windows, and any partition that
/// separates the pair.
pub fn stall_intervals(plan: &FaultPlan, topo: Topology, cub: u32, observer: u32) -> Intervals {
    let mut out = Intervals::new();
    for p in &plan.process {
        match p {
            ProcessFault::Crash { cub: c, at } if *c == cub => out.add(*at, SimTime::MAX),
            ProcessFault::PowerDomain { cubs, at } if cubs.contains(&cub) => {
                out.add(*at, SimTime::MAX)
            }
            ProcessFault::Freeze {
                cub: c,
                from,
                until,
            } if *c == cub => out.add(*from, *until),
            _ => {}
        }
    }
    let cub_node = topo.cub_node(cub);
    let obs_node = topo.cub_node(observer);
    let in_group = |group: &[NodeSel], node: u32| group.iter().any(|&s| topo.matches(s, node));
    for p in &plan.partitions {
        let separates = (in_group(&p.a, cub_node) && in_group(&p.b, obs_node))
            || (in_group(&p.b, cub_node) && in_group(&p.a, obs_node));
        if separates {
            out.add(p.from, p.heal);
        }
    }
    out
}

/// One observed deadman declaration, lifted out of the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservedDeclare {
    /// When the declaration happened.
    pub at: SimTime,
    /// The cub that declared the failure.
    pub declarer: u32,
    /// The cub declared dead.
    pub failed: u32,
    /// The silence the declarer measured.
    pub silence: SimDuration,
}

/// Checks that every declaration in `declares` is justified: the measured
/// silence strictly exceeds `timeout`, and the declared cub was genuinely
/// unable to reach its declarer for essentially the whole claimed silence.
///
/// `grace` absorbs the protocol's honest measurement slop at both ends of
/// the silence window — the last ping before a stall can land up to one
/// deadman interval plus one worst-case network latency after the stall
/// begins, and symmetrically a resumed cub's first ping takes as long to
/// arrive — so the stall intervals derived from the plan must cover
/// `[at - silence + grace, at - grace)`. Callers pass
/// `deadman_interval + latency.worst_case()`.
///
/// Returns one human-readable violation string per unjustified
/// declaration (empty = invariant holds).
pub fn check_deadman_justified(
    plan: &FaultPlan,
    topo: Topology,
    declares: &[ObservedDeclare],
    timeout: SimDuration,
    grace: SimDuration,
) -> Vec<String> {
    let mut violations = Vec::new();
    for d in declares {
        if d.silence <= timeout {
            violations.push(format!(
                "cub{} declared cub{} dead at {} with silence {} <= deadman timeout {}",
                d.declarer, d.failed, d.at, d.silence, timeout
            ));
            continue;
        }
        let stalls = stall_intervals(plan, topo, d.failed, d.declarer);
        let from = d.at.saturating_sub(d.silence) + grace;
        let until = d.at.saturating_sub(grace);
        if !stalls.covers(from, until) {
            violations.push(format!(
                "cub{} declared cub{} dead at {} (silence {}), but the plan stalls it only \
                 during {:?} — a live cub was declared dead",
                d.declarer,
                d.failed,
                d.at,
                d.silence,
                stalls.spans()
            ));
        }
    }
    violations
}

/// The bound the loss-window invariant holds a single clean failure to:
/// detection can take up to the deadman timeout plus two ping intervals
/// plus one worst-case network hop, and the schedule needs a few block
/// play times for the failure notices to propagate and mirrored sends to
/// take over.
pub fn loss_window_bound(
    deadman_timeout: SimDuration,
    deadman_interval: SimDuration,
    worst_latency: SimDuration,
    block_play_time: SimDuration,
) -> SimDuration {
    deadman_timeout + deadman_interval.mul_u64(2) + worst_latency + block_play_time.mul_u64(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn intervals_merge_and_cover() {
        let mut iv = Intervals::new();
        assert!(iv.is_empty());
        iv.add(t(5), t(7));
        iv.add(t(1), t(3));
        iv.add(t(2), t(5)); // bridges the gap
        assert_eq!(iv.spans(), &[(t(1), t(7))]);
        assert!(iv.covers(t(2), t(6)));
        assert!(iv.covers(t(1), t(7)));
        assert!(!iv.covers(t(0), t(2)));
        assert!(!iv.covers(t(6), t(8)));
        // Empty queries and degenerate adds.
        assert!(iv.covers(t(9), t(9)));
        iv.add(t(8), t(8));
        assert_eq!(iv.spans().len(), 1);
    }

    #[test]
    fn stalls_combine_crash_freeze_and_partition() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let plan = FaultPlan::new()
            .freeze(2, t(1), t(3))
            .partition(vec![NodeSel::Cub(2)], vec![NodeSel::Cub(3)], t(5), t(6))
            .crash(2, t(8));
        // Cub 3 observes all three stalls of cub 2.
        let stalls = stall_intervals(&plan, topo, 2, 3);
        assert_eq!(
            stalls.spans(),
            &[(t(1), t(3)), (t(5), t(6)), (t(8), SimTime::MAX)]
        );
        // Cub 1 is on cub 2's side of nothing: the partition doesn't
        // separate them, so only the freeze and the crash stall the pair.
        let stalls = stall_intervals(&plan, topo, 2, 1);
        assert_eq!(stalls.spans(), &[(t(1), t(3)), (t(8), SimTime::MAX)]);
        // A power-domain cut stalls every member.
        let pd = FaultPlan::new().power_domain(vec![0, 1], t(4));
        assert_eq!(
            stall_intervals(&pd, topo, 1, 2).spans(),
            &[(t(4), SimTime::MAX)]
        );
        assert!(stall_intervals(&pd, topo, 2, 1).is_empty());
    }

    #[test]
    fn justified_and_unjustified_declares() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let timeout = d(2);
        let grace = SimDuration::from_millis(600);
        let plan = FaultPlan::new().crash(1, t(5));
        // Silence accumulated since the crash: justified.
        let ok = ObservedDeclare {
            at: t(8),
            declarer: 2,
            failed: 1,
            silence: d(3),
        };
        assert!(check_deadman_justified(&plan, topo, &[ok], timeout, grace).is_empty());
        // Silence at exactly the timeout: the strict threshold was violated.
        let early = ObservedDeclare {
            silence: timeout,
            ..ok
        };
        let v = check_deadman_justified(&plan, topo, &[early], timeout, grace);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("<= deadman timeout"), "{}", v[0]);
        // A declaration against a cub the plan never stalls: a live cub
        // was declared dead.
        let phantom = ObservedDeclare { failed: 3, ..ok };
        let v = check_deadman_justified(&plan, topo, &[phantom], timeout, grace);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("live cub"), "{}", v[0]);
    }

    #[test]
    fn freeze_barely_long_enough_is_justified() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let timeout = d(2);
        let grace = SimDuration::from_millis(600);
        // Frozen 1s..5s; declared at 4.5s with silence 2.2s. The stall
        // must cover [4.5 - 2.2 + 0.6, 4.5 - 0.6) = [2.9, 3.9) — it does.
        let plan = FaultPlan::new().freeze(0, t(1), t(5));
        let declare = ObservedDeclare {
            at: SimTime::from_millis(4_500),
            declarer: 1,
            failed: 0,
            silence: SimDuration::from_millis(2_200),
        };
        assert!(check_deadman_justified(&plan, topo, &[declare], timeout, grace).is_empty());
        // The same declare against a freeze that ended at 3s is not
        // covered: the cub was back for ~1.5s of the claimed silence.
        let plan = FaultPlan::new().freeze(0, t(1), t(3));
        let v = check_deadman_justified(&plan, topo, &[declare], timeout, grace);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn loss_window_bound_tracks_its_terms() {
        let bound = loss_window_bound(
            d(5),
            SimDuration::from_millis(500),
            SimDuration::from_millis(10),
            d(1),
        );
        assert_eq!(bound, SimDuration::from_millis(5_000 + 1_000 + 10 + 4_000));
    }
}
