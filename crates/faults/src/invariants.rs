//! Pure invariant checks over fault plans and observed failure
//! declarations.
//!
//! The checks here are plain interval algebra — no system types — so the
//! core crate and the chaos runner can share them. The system-side
//! invariants that need live state (no double-delivered block, schedule
//! views within `maxVStateLead`, bounded loss window) live next to that
//! state; this module owns the one invariant that is purely a function of
//! the plan and the trace: **every deadman declaration must be justified
//! by a real communication stall**.

use tiger_sim::{SimDuration, SimTime};

use crate::plan::{FaultPlan, NodeSel, ProcessFault, Topology};

/// A merged, sorted set of half-open `[from, until)` intervals during
/// which some condition holds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Intervals {
    spans: Vec<(SimTime, SimTime)>,
}

impl Intervals {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `[from, until)`, merging with anything it touches.
    pub fn add(&mut self, from: SimTime, until: SimTime) {
        if until <= from {
            return;
        }
        self.spans.push((from, until));
        self.spans.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(self.spans.len());
        for &(f, u) in &self.spans {
            match merged.last_mut() {
                Some(last) if f <= last.1 => last.1 = last.1.max(u),
                _ => merged.push((f, u)),
            }
        }
        self.spans = merged;
    }

    /// Whether `[from, until)` lies entirely inside one merged span.
    /// An empty query interval (`until <= from`) is trivially covered.
    pub fn covers(&self, from: SimTime, until: SimTime) -> bool {
        if until <= from {
            return true;
        }
        self.spans.iter().any(|&(f, u)| f <= from && until <= u)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The merged spans, sorted.
    pub fn spans(&self) -> &[(SimTime, SimTime)] {
        &self.spans
    }
}

/// The intervals during which `cub` cannot get a ping through to
/// `observer`, according to `plan`: its crashes and power-domain cuts
/// (which stall it until a matching restart, or forever), its freeze
/// windows, and any partition that separates the pair.
pub fn stall_intervals(plan: &FaultPlan, topo: Topology, cub: u32, observer: u32) -> Intervals {
    let mut out = Intervals::new();
    // A crash/power-cut stall ends at the cub's next scheduled restart:
    // the rejoin protocol announces itself ring-wide immediately, so from
    // the restart instant on the cub is reachable again (modulo the
    // checker's grace, which absorbs the announcement latency).
    let mut restarts: Vec<SimTime> = plan
        .process
        .iter()
        .filter_map(|p| match p {
            ProcessFault::Restart { cub: c, at } if *c == cub => Some(*at),
            _ => None,
        })
        .collect();
    restarts.sort();
    let stall_end = |down_at: SimTime| {
        restarts
            .iter()
            .copied()
            .find(|&r| r > down_at)
            .unwrap_or(SimTime::MAX)
    };
    for p in &plan.process {
        match p {
            ProcessFault::Crash { cub: c, at } if *c == cub => out.add(*at, stall_end(*at)),
            ProcessFault::PowerDomain { cubs, at } if cubs.contains(&cub) => {
                out.add(*at, stall_end(*at))
            }
            ProcessFault::Freeze {
                cub: c,
                from,
                until,
            } if *c == cub => out.add(*from, *until),
            _ => {}
        }
    }
    for (from, heal) in partitions_separating(plan, topo, cub, observer) {
        out.add(from, heal);
    }
    out
}

/// The `(from, heal)` windows of every partition in `plan` that puts
/// `cub` and `observer` on opposite sides.
fn partitions_separating(
    plan: &FaultPlan,
    topo: Topology,
    cub: u32,
    observer: u32,
) -> Vec<(SimTime, SimTime)> {
    let cub_node = topo.cub_node(cub);
    let obs_node = topo.cub_node(observer);
    let in_group = |group: &[NodeSel], node: u32| group.iter().any(|&s| topo.matches(s, node));
    plan.partitions
        .iter()
        .filter(|p| {
            (in_group(&p.a, cub_node) && in_group(&p.b, obs_node))
                || (in_group(&p.b, cub_node) && in_group(&p.a, obs_node))
        })
        .map(|p| (p.from, p.heal))
        .collect()
}

/// The probability that a probabilistic-drop window silences a ping pair
/// for longer than the deadman timeout: every ping that should land in a
/// timeout-sized window must drop, and with pings every `ping_interval`
/// that is `timeout / ping_interval` consecutive drops (at least one).
/// Using the floor is conservative — fewer assumed pings means a higher
/// silence probability, so borderline windows err toward "this drop
/// clause could have caused the declaration".
pub fn silence_probability(
    drop_prob: f64,
    timeout: SimDuration,
    ping_interval: SimDuration,
) -> f64 {
    if drop_prob <= 0.0 {
        return 0.0;
    }
    let pings = if ping_interval == SimDuration::ZERO {
        1
    } else {
        timeout.div_duration(ping_interval).max(1)
    };
    drop_prob.powi(pings.min(i32::MAX as u64) as i32)
}

/// The intervals during which a probabilistic-drop clause could
/// plausibly have silenced `cub`'s pings toward `observer`: every link
/// window matching the pair whose [`silence_probability`] is at least
/// `min_prob`. Windows below the threshold are *excluded* — a declare
/// during a 0.1%-drop window is still a live cub declared dead, not an
/// unlucky ping streak (at `min_prob = 1e-9` the whole campaign would
/// see such a streak once per ~billion windows).
pub fn drop_silence_intervals(
    plan: &FaultPlan,
    topo: Topology,
    cub: u32,
    observer: u32,
    timeout: SimDuration,
    ping_interval: SimDuration,
    min_prob: f64,
) -> Intervals {
    let mut out = Intervals::new();
    let cub_node = topo.cub_node(cub);
    let obs_node = topo.cub_node(observer);
    for l in &plan.links {
        if topo.matches(l.src, cub_node)
            && topo.matches(l.dst, obs_node)
            && silence_probability(l.drop_prob, timeout, ping_interval) >= min_prob
        {
            out.add(l.from, l.until);
        }
    }
    out
}

/// One observed deadman declaration, lifted out of the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservedDeclare {
    /// When the declaration happened.
    pub at: SimTime,
    /// The cub that declared the failure.
    pub declarer: u32,
    /// The cub declared dead.
    pub failed: u32,
    /// The silence the declarer measured.
    pub silence: SimDuration,
}

/// A genuine communication stall observed in the run itself rather than
/// declared by the plan — a cub that fenced itself off after learning it
/// was declared dead (a partition-induced cascade), or was power-cut by a
/// protocol reaction. The chaos runner lifts these out of the trace
/// (`cub-fenced` / protocol-side `power-cut`, closed by `cub-restart`) so
/// that declarations against genuinely silent cubs the *plan* never
/// touched still count as justified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObservedStall {
    /// The silent cub.
    pub cub: u32,
    /// When the silence began.
    pub from: SimTime,
    /// When it ended (`SimTime::MAX` if it never did).
    pub until: SimTime,
}

/// Checks that every declaration in `declares` is justified: the measured
/// silence strictly exceeds `timeout`, and the declared cub was genuinely
/// unable to reach its declarer for essentially the whole claimed silence.
///
/// `grace` absorbs the protocol's honest measurement slop at both ends of
/// the silence window — the last ping before a stall can land up to one
/// deadman interval plus one worst-case network latency after the stall
/// begins, and symmetrically a resumed cub's first ping takes as long to
/// arrive — so the stall intervals derived from the plan must cover
/// `[at - silence + grace, at - grace)`. Callers pass
/// `deadman_interval + latency.worst_case()`.
///
/// Returns one human-readable violation string per unjustified
/// declaration (empty = invariant holds).
pub fn check_deadman_justified(
    plan: &FaultPlan,
    topo: Topology,
    declares: &[ObservedDeclare],
    timeout: SimDuration,
    grace: SimDuration,
) -> Vec<String> {
    check_deadman_justified_with(plan, topo, declares, &[], timeout, grace)
}

/// [`check_deadman_justified`] with trace-observed stalls folded in: the
/// partitioned-ring form of the invariant. During a partition each side
/// declares the other dead (justifiably — the stall intervals cover it),
/// and after the heal the fenced losers are genuinely silent without any
/// plan clause saying so; their fencing intervals arrive via `extra`.
pub fn check_deadman_justified_with(
    plan: &FaultPlan,
    topo: Topology,
    declares: &[ObservedDeclare],
    extra: &[ObservedStall],
    timeout: SimDuration,
    grace: SimDuration,
) -> Vec<String> {
    check_justified_inner(plan, topo, declares, extra, timeout, grace, None)
}

/// [`check_deadman_justified_with`] under probabilistic drops: instead of
/// skipping the invariant when a plan has `drop prob=` clauses, model the
/// per-pair silence probability. A drop window matching the declared pair
/// whose [`silence_probability`] reaches `min_prob` counts as a stall
/// interval (dropped pings plausibly caused the silence); windows below
/// the threshold do not, so a declaration they "explain" is still flagged
/// as a live cub declared dead. `ping_interval` is the heartbeat period
/// the probability model divides the timeout by.
#[allow(clippy::too_many_arguments)]
pub fn check_deadman_justified_probabilistic(
    plan: &FaultPlan,
    topo: Topology,
    declares: &[ObservedDeclare],
    extra: &[ObservedStall],
    timeout: SimDuration,
    ping_interval: SimDuration,
    grace: SimDuration,
    min_prob: f64,
) -> Vec<String> {
    check_justified_inner(
        plan,
        topo,
        declares,
        extra,
        timeout,
        grace,
        Some((ping_interval, min_prob)),
    )
}

fn check_justified_inner(
    plan: &FaultPlan,
    topo: Topology,
    declares: &[ObservedDeclare],
    extra: &[ObservedStall],
    timeout: SimDuration,
    grace: SimDuration,
    drops: Option<(SimDuration, f64)>,
) -> Vec<String> {
    let mut violations = Vec::new();
    for d in declares {
        if d.silence <= timeout {
            violations.push(format!(
                "cub{} declared cub{} dead at {} with silence {} <= deadman timeout {}",
                d.declarer, d.failed, d.at, d.silence, timeout
            ));
            continue;
        }
        let mut stalls = stall_intervals(plan, topo, d.failed, d.declarer);
        for s in extra.iter().filter(|s| s.cub == d.failed) {
            stalls.add(s.from, s.until);
        }
        if let Some((ping_interval, min_prob)) = drops {
            let windows = drop_silence_intervals(
                plan,
                topo,
                d.failed,
                d.declarer,
                timeout,
                ping_interval,
                min_prob,
            );
            for &(from, until) in windows.spans() {
                stalls.add(from, until);
            }
        }
        // A healed partition leaves the pair's failure views divergent:
        // each side declared the other dead, so the declared cub pings
        // its *believed* successor — often a cub the cascade has already
        // fenced — and the declarer structurally hears nothing until the
        // views reconcile. The reconciliation takes at most one more
        // deadman round (timeout plus a check tick and the notice
        // latency, both inside `grace`), so the pair's stall extends one
        // settle window past the heal; any silence claimed beyond it
        // means baselines were not reset and is a genuine violation.
        let settle = timeout + grace + grace;
        for (from, heal) in partitions_separating(plan, topo, d.failed, d.declarer) {
            if heal < SimTime::MAX {
                stalls.add(from, heal + settle);
            }
        }
        let from = d.at.saturating_sub(d.silence) + grace;
        let until = d.at.saturating_sub(grace);
        if !stalls.covers(from, until) {
            violations.push(format!(
                "cub{} declared cub{} dead at {} (silence {}), but it was stalled only \
                 during {:?} — a live cub was declared dead",
                d.declarer,
                d.failed,
                d.at,
                d.silence,
                stalls.spans()
            ));
        }
    }
    violations
}

/// The bound the loss-window invariant holds a single clean failure to:
/// detection can take up to the deadman timeout plus two ping intervals
/// plus one worst-case network hop, and the schedule needs a few block
/// play times for the failure notices to propagate and mirrored sends to
/// take over.
pub fn loss_window_bound(
    deadman_timeout: SimDuration,
    deadman_interval: SimDuration,
    worst_latency: SimDuration,
    block_play_time: SimDuration,
) -> SimDuration {
    deadman_timeout + deadman_interval.mul_u64(2) + worst_latency + block_play_time.mul_u64(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn d(secs: u64) -> SimDuration {
        SimDuration::from_secs(secs)
    }

    #[test]
    fn intervals_merge_and_cover() {
        let mut iv = Intervals::new();
        assert!(iv.is_empty());
        iv.add(t(5), t(7));
        iv.add(t(1), t(3));
        iv.add(t(2), t(5)); // bridges the gap
        assert_eq!(iv.spans(), &[(t(1), t(7))]);
        assert!(iv.covers(t(2), t(6)));
        assert!(iv.covers(t(1), t(7)));
        assert!(!iv.covers(t(0), t(2)));
        assert!(!iv.covers(t(6), t(8)));
        // Empty queries and degenerate adds.
        assert!(iv.covers(t(9), t(9)));
        iv.add(t(8), t(8));
        assert_eq!(iv.spans().len(), 1);
    }

    #[test]
    fn stalls_combine_crash_freeze_and_partition() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let plan = FaultPlan::new()
            .freeze(2, t(1), t(3))
            .partition(vec![NodeSel::Cub(2)], vec![NodeSel::Cub(3)], t(5), t(6))
            .crash(2, t(8));
        // Cub 3 observes all three stalls of cub 2.
        let stalls = stall_intervals(&plan, topo, 2, 3);
        assert_eq!(
            stalls.spans(),
            &[(t(1), t(3)), (t(5), t(6)), (t(8), SimTime::MAX)]
        );
        // Cub 1 is on cub 2's side of nothing: the partition doesn't
        // separate them, so only the freeze and the crash stall the pair.
        let stalls = stall_intervals(&plan, topo, 2, 1);
        assert_eq!(stalls.spans(), &[(t(1), t(3)), (t(8), SimTime::MAX)]);
        // A power-domain cut stalls every member.
        let pd = FaultPlan::new().power_domain(vec![0, 1], t(4));
        assert_eq!(
            stall_intervals(&pd, topo, 1, 2).spans(),
            &[(t(4), SimTime::MAX)]
        );
        assert!(stall_intervals(&pd, topo, 2, 1).is_empty());
    }

    #[test]
    fn justified_and_unjustified_declares() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let timeout = d(2);
        let grace = SimDuration::from_millis(600);
        let plan = FaultPlan::new().crash(1, t(5));
        // Silence accumulated since the crash: justified.
        let ok = ObservedDeclare {
            at: t(8),
            declarer: 2,
            failed: 1,
            silence: d(3),
        };
        assert!(check_deadman_justified(&plan, topo, &[ok], timeout, grace).is_empty());
        // Silence at exactly the timeout: the strict threshold was violated.
        let early = ObservedDeclare {
            silence: timeout,
            ..ok
        };
        let v = check_deadman_justified(&plan, topo, &[early], timeout, grace);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("<= deadman timeout"), "{}", v[0]);
        // A declaration against a cub the plan never stalls: a live cub
        // was declared dead.
        let phantom = ObservedDeclare { failed: 3, ..ok };
        let v = check_deadman_justified(&plan, topo, &[phantom], timeout, grace);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("live cub"), "{}", v[0]);
    }

    #[test]
    fn freeze_barely_long_enough_is_justified() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let timeout = d(2);
        let grace = SimDuration::from_millis(600);
        // Frozen 1s..5s; declared at 4.5s with silence 2.2s. The stall
        // must cover [4.5 - 2.2 + 0.6, 4.5 - 0.6) = [2.9, 3.9) — it does.
        let plan = FaultPlan::new().freeze(0, t(1), t(5));
        let declare = ObservedDeclare {
            at: SimTime::from_millis(4_500),
            declarer: 1,
            failed: 0,
            silence: SimDuration::from_millis(2_200),
        };
        assert!(check_deadman_justified(&plan, topo, &[declare], timeout, grace).is_empty());
        // The same declare against a freeze that ended at 3s is not
        // covered: the cub was back for ~1.5s of the claimed silence.
        let plan = FaultPlan::new().freeze(0, t(1), t(3));
        let v = check_deadman_justified(&plan, topo, &[declare], timeout, grace);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn restart_ends_a_crash_stall() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let plan = FaultPlan::new()
            .crash(1, t(5))
            .restart(1, t(10))
            .crash(1, t(20));
        // First crash stalls until the restart; the second forever.
        assert_eq!(
            stall_intervals(&plan, topo, 1, 2).spans(),
            &[(t(5), t(10)), (t(20), SimTime::MAX)]
        );
        // Power-domain cuts pair with restarts the same way.
        let pd = FaultPlan::new()
            .power_domain(vec![1, 2], t(4))
            .restart(2, t(9));
        assert_eq!(stall_intervals(&pd, topo, 2, 0).spans(), &[(t(4), t(9))]);
        assert_eq!(
            stall_intervals(&pd, topo, 1, 0).spans(),
            &[(t(4), SimTime::MAX)]
        );
        // A declaration whose silence window reaches past the restart is
        // unjustified: the cub was back and talking.
        let timeout = d(2);
        let grace = SimDuration::from_millis(600);
        let late = ObservedDeclare {
            at: t(14),
            declarer: 2,
            failed: 1,
            silence: d(6),
        };
        let v = check_deadman_justified(&plan, topo, &[late], timeout, grace);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("live cub"), "{}", v[0]);
        // The same declaration landing before the restart is justified.
        let ok = ObservedDeclare {
            at: t(9),
            silence: d(3),
            ..late
        };
        assert!(check_deadman_justified(&plan, topo, &[ok], timeout, grace).is_empty());
    }

    #[test]
    fn observed_stalls_justify_fencing_cascades() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let timeout = d(2);
        let grace = SimDuration::from_millis(600);
        // The plan never touches cub 3, but the run fenced it at t=5
        // (e.g. the partition loser): a later declaration is justified
        // only when the fencing interval is passed in.
        let plan = FaultPlan::new();
        let declare = ObservedDeclare {
            at: t(9),
            declarer: 0,
            failed: 3,
            silence: d(3),
        };
        assert_eq!(
            check_deadman_justified(&plan, topo, &[declare], timeout, grace).len(),
            1
        );
        let fence = ObservedStall {
            cub: 3,
            from: t(5),
            until: SimTime::MAX,
        };
        assert!(
            check_deadman_justified_with(&plan, topo, &[declare], &[fence], timeout, grace)
                .is_empty()
        );
        // A stall for a different cub does not help.
        let other = ObservedStall { cub: 2, ..fence };
        assert_eq!(
            check_deadman_justified_with(&plan, topo, &[declare], &[other], timeout, grace).len(),
            1
        );
    }

    #[test]
    fn silence_probability_compounds_per_ping() {
        let timeout = d(2);
        let interval = SimDuration::from_millis(500);
        // Four pings must all drop: 0.5^4.
        let p = silence_probability(0.5, timeout, interval);
        assert!((p - 0.0625).abs() < 1e-12, "{p}");
        // Heavier loss, same window.
        assert!(silence_probability(0.9, timeout, interval) > p);
        // No drops, no silence.
        assert_eq!(silence_probability(0.0, timeout, interval), 0.0);
        // Degenerate intervals still assume at least one ping.
        assert_eq!(silence_probability(0.3, timeout, d(10)), 0.3);
        assert_eq!(silence_probability(0.3, timeout, SimDuration::ZERO), 0.3);
    }

    #[test]
    fn heavy_drop_windows_justify_declares_but_light_ones_do_not() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let timeout = d(2);
        let interval = SimDuration::from_millis(500);
        let grace = SimDuration::from_millis(600);
        let min_prob = 1e-9;
        let declare = ObservedDeclare {
            at: t(8),
            declarer: 2,
            failed: 1,
            silence: d(3),
        };
        // A 70%-drop window on the pair's ping link: silence probability
        // 0.7^4 ≈ 0.24, far above threshold — the window is a plausible
        // stall and the declaration passes.
        let heavy = FaultPlan::new().drop_msgs(NodeSel::Cub(1), NodeSel::Cub(2), 0.7, t(4), t(9));
        assert!(check_deadman_justified_probabilistic(
            &heavy,
            topo,
            &[declare],
            &[],
            timeout,
            interval,
            grace,
            min_prob,
        )
        .is_empty());
        // The legacy gate would have skipped this plan entirely; the
        // non-probabilistic checker flags the same declaration.
        assert_eq!(
            check_deadman_justified_with(&heavy, topo, &[declare], &[], timeout, grace).len(),
            1
        );
        // A 0.1%-drop window: silence probability 1e-12, below threshold.
        // Dropped pings cannot explain a full timeout of silence, so the
        // declaration is still a live cub declared dead.
        let light = FaultPlan::new().drop_msgs(NodeSel::Cub(1), NodeSel::Cub(2), 0.001, t(4), t(9));
        let v = check_deadman_justified_probabilistic(
            &light,
            topo,
            &[declare],
            &[],
            timeout,
            interval,
            grace,
            min_prob,
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("live cub"), "{}", v[0]);
        // A heavy window on an unrelated link (controller-sourced, like
        // the lossy-control scenario) never silences a cub pair.
        let ctrl = FaultPlan::new().drop_msgs(NodeSel::Ctrl, NodeSel::Any, 0.9, t(4), t(9));
        assert_eq!(
            check_deadman_justified_probabilistic(
                &ctrl,
                topo,
                &[declare],
                &[],
                timeout,
                interval,
                grace,
                min_prob,
            )
            .len(),
            1
        );
        // The drop window only covers its own span: a silence claim
        // reaching outside the window is unjustified even at 70% drop.
        let early = ObservedDeclare {
            at: t(12),
            silence: d(3),
            ..declare
        };
        assert_eq!(
            check_deadman_justified_probabilistic(
                &heavy,
                topo,
                &[early],
                &[],
                timeout,
                interval,
                grace,
                min_prob,
            )
            .len(),
            1
        );
    }

    #[test]
    fn drop_silence_intervals_select_matching_windows() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 0,
            backup_controller: false,
        };
        let timeout = d(2);
        let interval = SimDuration::from_millis(500);
        let plan = FaultPlan::new()
            .drop_msgs(NodeSel::Cub(1), NodeSel::Cub(2), 0.5, t(1), t(3))
            .drop_msgs(NodeSel::Any, NodeSel::Cub(2), 0.5, t(5), t(7))
            .drop_msgs(NodeSel::Cub(1), NodeSel::Cub(2), 0.001, t(10), t(12));
        let iv = drop_silence_intervals(&plan, topo, 1, 2, timeout, interval, 1e-9);
        // The wildcard source matches cub 1's node too; the light window
        // is filtered by the probability threshold.
        assert_eq!(iv.spans(), &[(t(1), t(3)), (t(5), t(7))]);
        // The reverse direction matches neither clause.
        assert!(drop_silence_intervals(&plan, topo, 2, 1, timeout, interval, 1e-9).is_empty());
    }

    #[test]
    fn loss_window_bound_tracks_its_terms() {
        let bound = loss_window_bound(
            d(5),
            SimDuration::from_millis(500),
            SimDuration::from_millis(10),
            d(1),
        );
        assert_eq!(bound, SimDuration::from_millis(5_000 + 1_000 + 10 + 4_000));
    }
}
