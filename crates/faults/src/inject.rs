//! Compiled, seeded injectors — the runtime half of a [`FaultPlan`].
//!
//! Each injector follows the `tiger-trace` gating idiom: the struct is a
//! single `Option<Box<..>>`, so the disabled hot path is one null-pointer
//! test and the no-faults build of the system pays ~1 ns per hook (see
//! the `fault_check_off` micro-bench). Every injector owns its own
//! [`SimRng`] stream, forked under the `"faults"` subtree — fault
//! decisions never draw from the network's or a disk's own stream, so an
//! empty plan leaves every other RNG sequence untouched and injections
//! are bit-identical across reruns and fleet thread counts.

use tiger_sim::{SimDuration, SimRng, SimTime};

use crate::plan::{
    DiskFaultKind, FaultPlan, LinkFault, NodeSel, Partition, ProcessFault, Topology,
};

// --- Network -----------------------------------------------------------------

/// What the network should do to one message, as decided by
/// [`NetFaults::verdict`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetPerturb {
    /// Drop the message (`partition` tells a scheduled cut from a random
    /// per-link loss).
    Drop {
        /// True when a partition clause, not a probabilistic drop, ate it.
        partition: bool,
    },
    /// Deliver, but late and/or twice.
    Tweak {
        /// Extra one-way delay to add on top of the sampled latency.
        extra: SimDuration,
        /// Deliver a second copy (control messages only).
        duplicate: bool,
    },
}

/// One injection that actually happened, logged by the network layer for
/// the system to turn into trace events and duplicate deliveries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetInjection {
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// What was done.
    pub kind: NetInjectionKind,
}

/// The concrete outcome of one network injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetInjectionKind {
    /// The message never arrives.
    Dropped {
        /// True when a partition clause ate it.
        partition: bool,
    },
    /// The message arrives `extra` later than it would have.
    Delayed {
        /// The added delay.
        extra: SimDuration,
    },
    /// A second copy arrives at `second_delivery`.
    Duplicated {
        /// Delivery time of the duplicate.
        second_delivery: SimTime,
    },
}

#[derive(Debug)]
struct NetInner {
    rng: SimRng,
    topo: Topology,
    links: Vec<LinkFault>,
    partitions: Vec<Partition>,
    pending: Vec<NetInjection>,
}

impl NetInner {
    fn partitioned(&self, now: SimTime, src: u32, dst: u32) -> bool {
        let matches =
            |group: &[NodeSel], node: u32| group.iter().any(|&sel| self.topo.matches(sel, node));
        self.partitions.iter().any(|p| {
            now >= p.from
                && now < p.heal
                && ((matches(&p.a, src) && matches(&p.b, dst))
                    || (matches(&p.b, src) && matches(&p.a, dst)))
        })
    }
}

/// Per-network fault injector: link drop/delay/jitter/duplication windows
/// and bidirectional partitions.
#[derive(Debug, Default)]
pub struct NetFaults {
    inner: Option<Box<NetInner>>,
}

impl NetFaults {
    /// The no-faults injector: every verdict is `None` at the cost of one
    /// pointer test.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Compiles the network clauses of `plan` against `topo`, drawing
    /// fault decisions from `rng`. A plan with no network clauses
    /// compiles to the disabled injector.
    pub fn compile(plan: &FaultPlan, topo: Topology, rng: SimRng) -> Self {
        if plan.links.is_empty() && plan.partitions.is_empty() {
            return Self::disabled();
        }
        Self {
            inner: Some(Box::new(NetInner {
                rng,
                topo,
                links: plan.links.clone(),
                partitions: plan.partitions.clone(),
                pending: Vec::new(),
            })),
        }
    }

    /// Whether any clause is compiled in.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// Decides the fate of one message on the `src -> dst` link at `now`.
    /// `None` means deliver untouched. Partitions win outright and
    /// consume no randomness; link clauses are then consulted in plan
    /// order — a drop hit stops the scan, otherwise extra delays (plus
    /// uniform jitter) accumulate and any clause may flag duplication.
    pub fn verdict(&mut self, now: SimTime, src: u32, dst: u32) -> Option<NetPerturb> {
        let inner = self.inner.as_mut()?;
        if inner.partitioned(now, src, dst) {
            return Some(NetPerturb::Drop { partition: true });
        }
        let NetInner {
            rng, topo, links, ..
        } = &mut **inner;
        let mut extra = SimDuration::ZERO;
        let mut duplicate = false;
        for l in links.iter() {
            if now < l.from || now >= l.until {
                continue;
            }
            if !(topo.matches(l.src, src) && topo.matches(l.dst, dst)) {
                continue;
            }
            if l.drop_prob > 0.0 && rng.gen_bool(l.drop_prob) {
                return Some(NetPerturb::Drop { partition: false });
            }
            extra += l.extra_delay;
            if !l.extra_jitter.is_zero() {
                extra += SimDuration::from_nanos(rng.gen_range(0..=l.extra_jitter.as_nanos()));
            }
            if l.dup_prob > 0.0 && rng.gen_bool(l.dup_prob) {
                duplicate = true;
            }
        }
        if extra.is_zero() && !duplicate {
            None
        } else {
            Some(NetPerturb::Tweak { extra, duplicate })
        }
    }

    /// Logs an injection that the network carried out.
    pub fn note(&mut self, inj: NetInjection) {
        if let Some(inner) = &mut self.inner {
            inner.pending.push(inj);
        }
    }

    /// Whether [`take_injections`](Self::take_injections) would return
    /// anything — the cheap post-send check.
    pub fn has_injections(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| !i.pending.is_empty())
    }

    /// Drains the injection log (in the order the injections happened).
    pub fn take_injections(&mut self) -> Vec<NetInjection> {
        match &mut self.inner {
            Some(inner) => std::mem::take(&mut inner.pending),
            None => Vec::new(),
        }
    }
}

// --- Disk --------------------------------------------------------------------

/// What one disk read should suffer, as decided by [`DiskFaults::verdict`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiskVerdict {
    /// Serve normally.
    Clean,
    /// Fail this read transiently (the disk stays alive).
    Transient,
    /// Serve, but multiply the service time by the factor.
    Degraded(f64),
}

#[derive(Debug)]
struct TransientWindow {
    prob: f64,
    from: SimTime,
    until: SimTime,
}

#[derive(Debug)]
struct DegradedWindow {
    factor: f64,
    from: SimTime,
    until: SimTime,
}

#[derive(Debug)]
struct DiskInner {
    rng: SimRng,
    transients: Vec<TransientWindow>,
    degraded: Vec<DegradedWindow>,
}

/// Per-disk fault injector: transient read errors and degraded-throughput
/// windows. Disk *death* is not handled here — the system schedules it as
/// a dedicated event so the trace shows it at its exact instant.
#[derive(Debug, Default)]
pub struct DiskFaults {
    inner: Option<Box<DiskInner>>,
}

impl DiskFaults {
    /// The no-faults injector.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Compiles the windowed clauses of `plan` that target `cub`'s local
    /// disk `disk`. Death clauses are ignored here (see the type docs).
    /// No matching windows compiles to the disabled injector.
    pub fn compile(plan: &FaultPlan, cub: u32, disk: u32, rng: SimRng) -> Self {
        let mut transients = Vec::new();
        let mut degraded = Vec::new();
        for f in plan.disks.iter().filter(|f| f.cub == cub && f.disk == disk) {
            match f.kind {
                DiskFaultKind::Transient { prob, from, until } => {
                    transients.push(TransientWindow { prob, from, until });
                }
                DiskFaultKind::Degraded {
                    factor,
                    from,
                    until,
                } => {
                    degraded.push(DegradedWindow {
                        factor,
                        from,
                        until,
                    });
                }
                DiskFaultKind::Death { .. } => {}
            }
        }
        if transients.is_empty() && degraded.is_empty() {
            return Self::disabled();
        }
        Self {
            inner: Some(Box::new(DiskInner {
                rng,
                transients,
                degraded,
            })),
        }
    }

    /// Whether any window is compiled in.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// Decides the fate of one read submitted at `now`. Transient windows
    /// are consulted in plan order (a hit ends the scan); otherwise the
    /// service-time factors of every open degraded window multiply.
    pub fn verdict(&mut self, now: SimTime) -> DiskVerdict {
        let Some(inner) = &mut self.inner else {
            return DiskVerdict::Clean;
        };
        for w in &inner.transients {
            if now >= w.from && now < w.until && inner.rng.gen_bool(w.prob) {
                return DiskVerdict::Transient;
            }
        }
        let factor: f64 = inner
            .degraded
            .iter()
            .filter(|w| now >= w.from && now < w.until)
            .map(|w| w.factor)
            .product();
        if factor > 1.0 {
            DiskVerdict::Degraded(factor)
        } else {
            DiskVerdict::Clean
        }
    }
}

// --- Process -----------------------------------------------------------------

#[derive(Debug)]
struct FreezeWindow {
    cub: u32,
    from: SimTime,
    until: SimTime,
}

#[derive(Debug)]
struct ProcInner {
    freezes: Vec<FreezeWindow>,
}

/// Process-level injector: freeze/resume stalls. Crashes and power-domain
/// cuts are instants, scheduled by the system as events; only the stall
/// windows need a per-dispatch check.
#[derive(Debug, Default)]
pub struct ProcFaults {
    inner: Option<Box<ProcInner>>,
}

impl ProcFaults {
    /// The no-faults injector.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Compiles the freeze clauses of `plan`. No freezes compiles to the
    /// disabled injector.
    pub fn compile(plan: &FaultPlan) -> Self {
        let freezes: Vec<FreezeWindow> = plan
            .process
            .iter()
            .filter_map(|p| match *p {
                ProcessFault::Freeze { cub, from, until } => {
                    Some(FreezeWindow { cub, from, until })
                }
                _ => None,
            })
            .collect();
        if freezes.is_empty() {
            return Self::disabled();
        }
        Self {
            inner: Some(Box::new(ProcInner { freezes })),
        }
    }

    /// Whether any freeze is compiled in — the one-pointer dispatch gate.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// If `cub` is frozen at `now`, the instant it resumes (the latest
    /// `until` among open windows, so overlapping freezes merge).
    pub fn frozen_until(&self, cub: u32, now: SimTime) -> Option<SimTime> {
        let inner = self.inner.as_ref()?;
        inner
            .freezes
            .iter()
            .filter(|w| w.cub == cub && now >= w.from && now < w.until)
            .map(|w| w.until)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;
    use tiger_sim::RngTree;

    fn topo() -> Topology {
        Topology {
            num_cubs: 4,
            num_clients: 2,
            backup_controller: false,
        }
    }

    fn rng(idx: u64) -> SimRng {
        RngTree::new(42).subtree("faults", 0).fork("net", idx)
    }

    #[test]
    fn disabled_injectors_do_nothing() {
        let mut net = NetFaults::disabled();
        assert!(!net.active());
        assert_eq!(net.verdict(SimTime::from_secs(1), 1, 2), None);
        assert!(!net.has_injections());
        assert!(net.take_injections().is_empty());
        let mut disk = DiskFaults::disabled();
        assert_eq!(disk.verdict(SimTime::from_secs(1)), DiskVerdict::Clean);
        let proc = ProcFaults::disabled();
        assert!(!proc.active());
        assert_eq!(proc.frozen_until(0, SimTime::from_secs(1)), None);
    }

    #[test]
    fn empty_plan_compiles_to_disabled() {
        let plan = FaultPlan::new();
        assert!(!NetFaults::compile(&plan, topo(), rng(0)).active());
        assert!(!DiskFaults::compile(&plan, 0, 0, rng(1)).active());
        assert!(!ProcFaults::compile(&plan).active());
        // A plan with only disk clauses still leaves net/proc disabled.
        let disk_only = FaultPlan::new().disk_kill(1, 0, SimTime::from_secs(5));
        assert!(!NetFaults::compile(&disk_only, topo(), rng(0)).active());
        assert!(!ProcFaults::compile(&disk_only).active());
        // ... and the kill clause alone compiles no *windowed* disk faults.
        assert!(!DiskFaults::compile(&disk_only, 1, 0, rng(1)).active());
    }

    #[test]
    fn certain_drop_applies_only_inside_its_window_and_link() {
        let plan = FaultPlan::new().drop_msgs(
            NodeSel::Cub(0),
            NodeSel::Cub(2),
            1.0,
            SimTime::from_secs(2),
            SimTime::from_secs(5),
        );
        let mut net = NetFaults::compile(&plan, topo(), rng(0));
        let (src, dst) = (topo().cub_node(0), topo().cub_node(2));
        assert_eq!(net.verdict(SimTime::from_secs(1), src, dst), None);
        assert_eq!(
            net.verdict(SimTime::from_secs(2), src, dst),
            Some(NetPerturb::Drop { partition: false })
        );
        // Window end is exclusive; the reverse direction is untouched.
        assert_eq!(net.verdict(SimTime::from_secs(5), src, dst), None);
        assert_eq!(net.verdict(SimTime::from_secs(3), dst, src), None);
    }

    #[test]
    fn partition_cuts_both_directions_until_heal() {
        let plan = FaultPlan::new().partition(
            vec![NodeSel::Ctrl, NodeSel::Cub(0)],
            vec![NodeSel::Cub(2), NodeSel::Cub(3)],
            SimTime::from_secs(4),
            SimTime::from_secs(6),
        );
        let mut net = NetFaults::compile(&plan, topo(), rng(0));
        let t = SimTime::from_secs(5);
        let cut = Some(NetPerturb::Drop { partition: true });
        assert_eq!(net.verdict(t, 0, topo().cub_node(2)), cut);
        assert_eq!(net.verdict(t, topo().cub_node(3), topo().cub_node(0)), cut);
        // Within a side the link is clean; after heal everything is.
        assert_eq!(net.verdict(t, topo().cub_node(2), topo().cub_node(3)), None);
        assert_eq!(
            net.verdict(SimTime::from_secs(6), 0, topo().cub_node(2)),
            None
        );
    }

    #[test]
    fn delay_jitter_stays_within_its_bound() {
        let extra = SimDuration::from_millis(20);
        let jitter = SimDuration::from_millis(10);
        let plan = FaultPlan::new().delay_msgs(
            NodeSel::Cub(1),
            NodeSel::Any,
            extra,
            jitter,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let mut net = NetFaults::compile(&plan, topo(), rng(0));
        for i in 0..200u64 {
            let t = SimTime::from_millis(i * 10);
            match net.verdict(t, topo().cub_node(1), 0) {
                Some(NetPerturb::Tweak {
                    extra: e,
                    duplicate,
                }) => {
                    assert!(!duplicate);
                    assert!(
                        e >= extra && e <= extra + jitter,
                        "jitter out of bounds: {e}"
                    );
                }
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplication_flags_but_never_drops() {
        let plan = FaultPlan::new().duplicate_msgs(
            NodeSel::Ctrl,
            NodeSel::Cub(2),
            1.0,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let mut net = NetFaults::compile(&plan, topo(), rng(0));
        assert_eq!(
            net.verdict(SimTime::from_secs(1), 0, topo().cub_node(2)),
            Some(NetPerturb::Tweak {
                extra: SimDuration::ZERO,
                duplicate: true
            })
        );
    }

    #[test]
    fn injection_log_drains_in_order() {
        let plan = FaultPlan::new().drop_msgs(
            NodeSel::Any,
            NodeSel::Any,
            1.0,
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        let mut net = NetFaults::compile(&plan, topo(), rng(0));
        assert!(!net.has_injections());
        net.note(NetInjection {
            src: 1,
            dst: 2,
            kind: NetInjectionKind::Dropped { partition: false },
        });
        net.note(NetInjection {
            src: 2,
            dst: 3,
            kind: NetInjectionKind::Delayed {
                extra: SimDuration::from_millis(5),
            },
        });
        assert!(net.has_injections());
        let drained = net.take_injections();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].src, 1);
        assert_eq!(drained[1].src, 2);
        assert!(!net.has_injections());
    }

    #[test]
    fn verdict_sequence_is_deterministic() {
        let plan = FaultPlan::new()
            .drop_msgs(
                NodeSel::Any,
                NodeSel::Any,
                0.3,
                SimTime::ZERO,
                SimTime::from_secs(10),
            )
            .delay_msgs(
                NodeSel::Any,
                NodeSel::Any,
                SimDuration::from_millis(1),
                SimDuration::from_millis(9),
                SimTime::ZERO,
                SimTime::from_secs(10),
            );
        let run = || {
            let mut net = NetFaults::compile(&plan, topo(), rng(7));
            (0..500u64)
                .map(|i| net.verdict(SimTime::from_millis(i * 10), 1, 2))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn transient_window_hits_and_degraded_factors_multiply() {
        let plan = FaultPlan::new()
            .disk_transient(2, 0, 1.0, SimTime::from_secs(3), SimTime::from_secs(6))
            .disk_degraded(2, 0, 3.0, SimTime::from_secs(7), SimTime::from_secs(9))
            .disk_degraded(2, 0, 2.0, SimTime::from_secs(8), SimTime::from_secs(9));
        // Another disk on the same cub is untouched.
        assert!(!DiskFaults::compile(&plan, 2, 1, rng(1)).active());
        let mut disk = DiskFaults::compile(&plan, 2, 0, rng(1));
        assert_eq!(disk.verdict(SimTime::from_secs(2)), DiskVerdict::Clean);
        assert_eq!(disk.verdict(SimTime::from_secs(3)), DiskVerdict::Transient);
        assert_eq!(disk.verdict(SimTime::from_secs(6)), DiskVerdict::Clean);
        assert_eq!(
            disk.verdict(SimTime::from_secs(7)),
            DiskVerdict::Degraded(3.0)
        );
        assert_eq!(
            disk.verdict(SimTime::from_secs(8)),
            DiskVerdict::Degraded(6.0)
        );
        assert_eq!(disk.verdict(SimTime::from_secs(9)), DiskVerdict::Clean);
    }

    #[test]
    fn freeze_windows_merge_and_respect_boundaries() {
        let plan = FaultPlan::new()
            .freeze(0, SimTime::from_secs(2), SimTime::from_secs(4))
            .freeze(0, SimTime::from_secs(3), SimTime::from_secs(5));
        let proc = ProcFaults::compile(&plan);
        assert!(proc.active());
        assert_eq!(proc.frozen_until(0, SimTime::from_millis(1_999)), None);
        assert_eq!(
            proc.frozen_until(0, SimTime::from_secs(2)),
            Some(SimTime::from_secs(4))
        );
        // Inside the overlap the later resume wins.
        assert_eq!(
            proc.frozen_until(0, SimTime::from_millis(3_500)),
            Some(SimTime::from_secs(5))
        );
        // The resume instant itself is not frozen; other cubs never are.
        assert_eq!(proc.frozen_until(0, SimTime::from_secs(5)), None);
        assert_eq!(proc.frozen_until(1, SimTime::from_secs(3)), None);
    }
}
