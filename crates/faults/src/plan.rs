//! Declarative fault scenarios.
//!
//! A [`FaultPlan`] is a list of clauses describing *what goes wrong and
//! when*: lossy or slow links, bidirectional partitions with a scheduled
//! heal, flaky or slow or dead disks, and process-level crashes, stalls,
//! and correlated power-domain cuts. Plans are built in code (the chaos
//! scenario catalogue) or parsed from a small line-oriented text format
//! ([`FaultPlan::parse`]); either way they are pure data — nothing happens
//! until the system compiles a plan into seeded injectors.
//!
//! Determinism contract: a plan plus the system seed fully determines
//! every injection. Fault decisions draw from dedicated RNG streams
//! (forked under the `"faults"` subtree), never from the network's or the
//! disks' own streams, so a plan perturbs only what it says it perturbs.

use tiger_sim::{SimDuration, SimTime};

/// Which network node a link-fault endpoint matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeSel {
    /// Any node (`*` in the text format).
    Any,
    /// The primary controller.
    Ctrl,
    /// The backup controller (if configured).
    Backup,
    /// Cub `c` (`cN`).
    Cub(u32),
    /// Client machine `i` (`clientN`).
    Client(u32),
}

/// The node-numbering convention of the assembled system, mirrored here so
/// plans can be compiled without depending on the core crate: controller
/// is node 0, cub `c` is node `1 + c`, client `i` is node
/// `1 + num_cubs + i`, and the backup controller (when configured) sits
/// last.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of cubs.
    pub num_cubs: u32,
    /// Number of client machines.
    pub num_clients: u32,
    /// Whether a backup controller node exists.
    pub backup_controller: bool,
}

impl Topology {
    /// Node id of cub `c`.
    pub fn cub_node(&self, c: u32) -> u32 {
        1 + c
    }

    /// Node id of client machine `i`.
    pub fn client_node(&self, i: u32) -> u32 {
        1 + self.num_cubs + i
    }

    /// Node id of the backup controller, if configured.
    pub fn backup_node(&self) -> Option<u32> {
        self.backup_controller
            .then(|| 1 + self.num_cubs + self.num_clients)
    }

    /// Whether `sel` matches node id `node`.
    pub fn matches(&self, sel: NodeSel, node: u32) -> bool {
        match sel {
            NodeSel::Any => true,
            NodeSel::Ctrl => node == 0,
            NodeSel::Backup => Some(node) == self.backup_node(),
            NodeSel::Cub(c) => node == self.cub_node(c),
            NodeSel::Client(i) => node == self.client_node(i),
        }
    }

    /// Resolves a concrete selector to its node id (`None` for
    /// [`NodeSel::Any`] or an unconfigured backup).
    pub fn resolve(&self, sel: NodeSel) -> Option<u32> {
        match sel {
            NodeSel::Any => None,
            NodeSel::Ctrl => Some(0),
            NodeSel::Backup => self.backup_node(),
            NodeSel::Cub(c) => Some(self.cub_node(c)),
            NodeSel::Client(i) => Some(self.client_node(i)),
        }
    }
}

/// A per-link fault window: messages from `src` to `dst` during
/// `[from, until)` are dropped with `drop_prob`, delayed by `extra_delay`
/// plus uniform `extra_jitter`, and (control messages only) duplicated
/// with `dup_prob`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Sender selector.
    pub src: NodeSel,
    /// Receiver selector.
    pub dst: NodeSel,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Probability a matching message is dropped.
    pub drop_prob: f64,
    /// Fixed extra one-way delay for matching messages.
    pub extra_delay: SimDuration,
    /// Maximum additional uniform delay jitter.
    pub extra_jitter: SimDuration,
    /// Probability a matching control message is delivered twice.
    pub dup_prob: f64,
}

/// A bidirectional partition: during `[from, heal)`, every message with
/// one endpoint matching group `a` and the other matching group `b` is
/// dropped (both directions).
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// One side of the cut.
    pub a: Vec<NodeSel>,
    /// The other side.
    pub b: Vec<NodeSel>,
    /// When the cut happens.
    pub from: SimTime,
    /// When connectivity is restored.
    pub heal: SimTime,
}

/// What goes wrong with one disk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DiskFaultKind {
    /// Reads fail transiently with `prob` during `[from, until)`; the
    /// disk itself stays alive.
    Transient {
        /// Per-read failure probability.
        prob: f64,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// Service times are multiplied by `factor` during `[from, until)`
    /// (a degraded-throughput window: recalibration, vibration, a
    /// misbehaving firmware background scan).
    Degraded {
        /// Service-time multiplier (> 1 slows the disk).
        factor: f64,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// The disk dies for good at `at` — distinct from a whole-cub death:
    /// the cub keeps running (and pinging), so the deadman never fires
    /// and no mirror takeover covers the lost content.
    Death {
        /// Time of death.
        at: SimTime,
    },
}

/// A fault on one specific disk (`cub`'s local disk `disk`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskFault {
    /// The owning cub.
    pub cub: u32,
    /// The cub-local disk index.
    pub disk: u32,
    /// What happens.
    pub kind: DiskFaultKind,
}

/// A process-level fault.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcessFault {
    /// Power-cut one cub at `at` (the §5 experiment's fault).
    Crash {
        /// The victim.
        cub: u32,
        /// When.
        at: SimTime,
    },
    /// Freeze a cub during `[from, until)`: it processes nothing (no
    /// pings, no reads, no sends) but its machine stays up; at `until`
    /// it resumes and works through everything that queued.
    Freeze {
        /// The stalled cub.
        cub: u32,
        /// Stall start.
        from: SimTime,
        /// Resume instant.
        until: SimTime,
    },
    /// A correlated power-domain cut: every listed cub loses power at the
    /// same instant.
    PowerDomain {
        /// The victims.
        cubs: Vec<u32>,
        /// When.
        at: SimTime,
    },
    /// Restart a previously crashed/fenced/power-cut cub at `at`: it comes
    /// back with empty schedule state and runs the rejoin protocol. A
    /// restart of a cub that never failed is a no-op.
    Restart {
        /// The rejoiner.
        cub: u32,
        /// When power returns.
        at: SimTime,
    },
}

/// A scheduled live restripe step: at `at`, the system computes a
/// [`RestripePlan`](../tiger_layout) toward a stripe widened by
/// `add_cubs` pre-provisioned spare cubs — or shrunk by `remove_cubs`
/// trailing members, which drain their primaries to the survivors and
/// are fenced out at the cut-over — and starts executing it as
/// background disk/net work inside the event loop. Exactly one of the
/// two counts is nonzero; steps queue and run in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestripeDecl {
    /// When the restripe starts.
    pub at: SimTime,
    /// How many spare cubs the new stripe adds.
    pub add_cubs: u32,
    /// How many trailing stripe members the new stripe removes.
    pub remove_cubs: u32,
}

/// A whole scenario: what goes wrong, where, and when.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Per-link drop/delay/jitter/duplication windows.
    pub links: Vec<LinkFault>,
    /// Bidirectional partitions with scheduled heal.
    pub partitions: Vec<Partition>,
    /// Disk faults.
    pub disks: Vec<DiskFault>,
    /// Process faults.
    pub process: Vec<ProcessFault>,
    /// Scheduled live restripes (not faults, but part of the same timed
    /// scenario vocabulary so chaos plans can reconfigure under fire).
    pub restripes: Vec<RestripeDecl>,
}

/// One timed window of the plan, with a stable clause id for trace
/// markers (`fault-start clause=N` / `fault-end clause=N`). Clause ids
/// number the windowed clauses in plan order: links first, then
/// partitions, then windowed disk faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// Stable clause id.
    pub clause: u32,
    /// Window start.
    pub from: SimTime,
    /// Window end.
    pub until: SimTime,
}

impl FaultPlan {
    /// An empty plan (injects nothing; compiling it is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan has no clauses at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
            && self.partitions.is_empty()
            && self.disks.is_empty()
            && self.process.is_empty()
            && self.restripes.is_empty()
    }

    /// Adds a drop window on `src -> dst`.
    pub fn drop_msgs(
        mut self,
        src: NodeSel,
        dst: NodeSel,
        prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.links.push(LinkFault {
            src,
            dst,
            from,
            until,
            drop_prob: prob,
            extra_delay: SimDuration::ZERO,
            extra_jitter: SimDuration::ZERO,
            dup_prob: 0.0,
        });
        self
    }

    /// Adds a delay window on `src -> dst` (`extra` fixed plus up to
    /// `jitter` uniform).
    pub fn delay_msgs(
        mut self,
        src: NodeSel,
        dst: NodeSel,
        extra: SimDuration,
        jitter: SimDuration,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.links.push(LinkFault {
            src,
            dst,
            from,
            until,
            drop_prob: 0.0,
            extra_delay: extra,
            extra_jitter: jitter,
            dup_prob: 0.0,
        });
        self
    }

    /// Adds a control-message duplication window on `src -> dst`.
    pub fn duplicate_msgs(
        mut self,
        src: NodeSel,
        dst: NodeSel,
        prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.links.push(LinkFault {
            src,
            dst,
            from,
            until,
            drop_prob: 0.0,
            extra_delay: SimDuration::ZERO,
            extra_jitter: SimDuration::ZERO,
            dup_prob: prob,
        });
        self
    }

    /// Adds a bidirectional partition between groups `a` and `b`.
    pub fn partition(
        mut self,
        a: Vec<NodeSel>,
        b: Vec<NodeSel>,
        from: SimTime,
        heal: SimTime,
    ) -> Self {
        self.partitions.push(Partition { a, b, from, heal });
        self
    }

    /// Adds a transient-read-error window on one disk.
    pub fn disk_transient(
        mut self,
        cub: u32,
        disk: u32,
        prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.disks.push(DiskFault {
            cub,
            disk,
            kind: DiskFaultKind::Transient { prob, from, until },
        });
        self
    }

    /// Adds a degraded-throughput window on one disk.
    pub fn disk_degraded(
        mut self,
        cub: u32,
        disk: u32,
        factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.disks.push(DiskFault {
            cub,
            disk,
            kind: DiskFaultKind::Degraded {
                factor,
                from,
                until,
            },
        });
        self
    }

    /// Kills one disk for good at `at`.
    pub fn disk_kill(mut self, cub: u32, disk: u32, at: SimTime) -> Self {
        self.disks.push(DiskFault {
            cub,
            disk,
            kind: DiskFaultKind::Death { at },
        });
        self
    }

    /// Power-cuts one cub at `at`.
    pub fn crash(mut self, cub: u32, at: SimTime) -> Self {
        self.process.push(ProcessFault::Crash { cub, at });
        self
    }

    /// Freezes one cub during `[from, until)`.
    pub fn freeze(mut self, cub: u32, from: SimTime, until: SimTime) -> Self {
        self.process.push(ProcessFault::Freeze { cub, from, until });
        self
    }

    /// Cuts a whole power domain (several cubs) at `at`.
    pub fn power_domain(mut self, cubs: Vec<u32>, at: SimTime) -> Self {
        self.process.push(ProcessFault::PowerDomain { cubs, at });
        self
    }

    /// Restarts a previously failed cub at `at` (rejoin protocol).
    pub fn restart(mut self, cub: u32, at: SimTime) -> Self {
        self.process.push(ProcessFault::Restart { cub, at });
        self
    }

    /// Schedules a live restripe at `at` adding `add_cubs` spare cubs.
    pub fn restripe(mut self, at: SimTime, add_cubs: u32) -> Self {
        self.restripes.push(RestripeDecl {
            at,
            add_cubs,
            remove_cubs: 0,
        });
        self
    }

    /// Schedules a live shrink at `at` removing the last `remove_cubs`
    /// stripe members (they drain to the survivors, then rejoin the
    /// spare pool at the cut-over).
    pub fn restripe_remove(mut self, at: SimTime, remove_cubs: u32) -> Self {
        self.restripes.push(RestripeDecl {
            at,
            add_cubs: 0,
            remove_cubs,
        });
        self
    }

    /// The plan's timed windows with their stable clause ids (for the
    /// `fault-start`/`fault-end` trace markers). Crashes, disk deaths,
    /// and freezes are instant-or-marked by their own dedicated events
    /// and are not listed here.
    pub fn windows(&self) -> Vec<FaultWindow> {
        let mut out = Vec::new();
        let mut clause = 0u32;
        for l in &self.links {
            out.push(FaultWindow {
                clause,
                from: l.from,
                until: l.until,
            });
            clause += 1;
        }
        for p in &self.partitions {
            out.push(FaultWindow {
                clause,
                from: p.from,
                until: p.heal,
            });
            clause += 1;
        }
        for d in &self.disks {
            match d.kind {
                DiskFaultKind::Transient { from, until, .. }
                | DiskFaultKind::Degraded { from, until, .. } => {
                    out.push(FaultWindow {
                        clause,
                        from,
                        until,
                    });
                    clause += 1;
                }
                DiskFaultKind::Death { .. } => {}
            }
        }
        out
    }

    /// Parses the line-oriented scenario format. One clause per line;
    /// blank lines and `#` comments are skipped:
    ///
    /// ```text
    /// # node tokens: * ctrl backup cN clientN; times: 2s 250ms 1.5s
    /// drop c1>c3 prob=0.3 from=2s until=5s
    /// delay c1>* extra=20ms jitter=10ms from=0s until=10s
    /// dup ctrl>c2 prob=0.05 from=1s until=2s
    /// partition c0,c1|c2,c3 from=4s heal=6s
    /// disk-transient c2:0 prob=0.5 from=3s until=6s
    /// disk-degraded c2:0 factor=3 from=3s until=6s
    /// disk-kill c2:0 at=5s
    /// crash c1 at=9s
    /// freeze c0 from=2s until=4s
    /// power-domain c1,c2 at=9s
    /// restart c1 at=15s
    /// restripe at=20s add=1
    /// restripe at=25s remove=1
    /// ```
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            parse_clause(line, &mut plan).map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(plan)
    }
}

// --- Text format -------------------------------------------------------------

/// Parses `2s`, `250ms`, `1.5s`, `40us`, `7ns`, `30min`, `24h` into a
/// duration. The long units exist for workload plans (diurnal periods,
/// endurance horizons); fault plans usually stay in seconds.
pub fn parse_duration(tok: &str) -> Result<SimDuration, String> {
    let (num, scale) = if let Some(n) = tok.strip_suffix("ms") {
        (n, 1_000_000.0)
    } else if let Some(n) = tok.strip_suffix("us") {
        (n, 1_000.0)
    } else if let Some(n) = tok.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = tok.strip_suffix("min") {
        (n, 60.0 * 1_000_000_000.0)
    } else if let Some(n) = tok.strip_suffix('h') {
        (n, 3_600.0 * 1_000_000_000.0)
    } else if let Some(n) = tok.strip_suffix('s') {
        (n, 1_000_000_000.0)
    } else {
        return Err(format!("time {tok:?} needs a unit (h/min/s/ms/us/ns)"));
    };
    let v: f64 = num
        .parse()
        .map_err(|_| format!("bad number in time {tok:?}"))?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!("time {tok:?} must be finite and non-negative"));
    }
    Ok(SimDuration::from_nanos((v * scale).round() as u64))
}

fn parse_time(tok: &str) -> Result<SimTime, String> {
    Ok(SimTime::ZERO + parse_duration(tok)?)
}

fn parse_node(tok: &str) -> Result<NodeSel, String> {
    match tok {
        "*" => Ok(NodeSel::Any),
        "ctrl" => Ok(NodeSel::Ctrl),
        "backup" => Ok(NodeSel::Backup),
        _ => {
            if let Some(n) = tok.strip_prefix("client") {
                n.parse()
                    .map(NodeSel::Client)
                    .map_err(|_| format!("bad client token {tok:?}"))
            } else if let Some(n) = tok.strip_prefix('c') {
                n.parse()
                    .map(NodeSel::Cub)
                    .map_err(|_| format!("bad cub token {tok:?}"))
            } else {
                Err(format!("unknown node token {tok:?}"))
            }
        }
    }
}

fn parse_cub(tok: &str) -> Result<u32, String> {
    match parse_node(tok)? {
        NodeSel::Cub(c) => Ok(c),
        _ => Err(format!("expected a cub token (cN), got {tok:?}")),
    }
}

/// Parses `cN:d` (cub and local disk index).
fn parse_disk_ref(tok: &str) -> Result<(u32, u32), String> {
    let (cub, disk) = tok
        .split_once(':')
        .ok_or_else(|| format!("expected cN:disk, got {tok:?}"))?;
    Ok((
        parse_cub(cub)?,
        disk.parse()
            .map_err(|_| format!("bad disk index in {tok:?}"))?,
    ))
}

fn parse_prob(tok: &str) -> Result<f64, String> {
    let v: f64 = tok
        .parse()
        .map_err(|_| format!("bad probability {tok:?}"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("probability {tok:?} must be in [0, 1]"));
    }
    Ok(v)
}

/// Key/value arguments after the clause head, e.g. `prob=0.3 from=2s`.
struct Args<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Args<'a> {
    fn new(toks: &[&'a str]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        for t in toks {
            let (k, v) = t
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {t:?}"))?;
            pairs.push((k, v));
        }
        Ok(Args { pairs })
    }

    fn get(&self, key: &str) -> Result<&'a str, String> {
        self.opt(key)
            .ok_or_else(|| format!("missing required argument {key}="))
    }

    fn opt(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }

    fn window(&self) -> Result<(SimTime, SimTime), String> {
        let from = parse_time(self.get("from")?)?;
        let until = parse_time(self.get("until")?)?;
        if until <= from {
            return Err("until= must be after from=".to_string());
        }
        Ok((from, until))
    }
}

fn parse_group(tok: &str) -> Result<Vec<NodeSel>, String> {
    tok.split(',').map(parse_node).collect()
}

fn parse_clause(line: &str, plan: &mut FaultPlan) -> Result<(), String> {
    let toks: Vec<&str> = line.split_ascii_whitespace().collect();
    let (&verb, rest) = toks.split_first().ok_or("empty clause")?;
    if verb == "restripe" {
        // Restripes target the whole system, so the clause has no head
        // token — only key=value arguments.
        let args = Args::new(rest)?;
        let at = parse_time(args.get("at")?)?;
        let add_cubs: u32 = match args.opt("add") {
            Some(v) => v
                .parse()
                .map_err(|_| "bad add= (expected a cub count)".to_string())?,
            None => 0,
        };
        let remove_cubs: u32 = match args.opt("remove") {
            Some(v) => v
                .parse()
                .map_err(|_| "bad remove= (expected a cub count)".to_string())?,
            None => 0,
        };
        if add_cubs == 0 && remove_cubs == 0 {
            return Err("restripe needs add= or remove= of at least 1".to_string());
        }
        if add_cubs > 0 && remove_cubs > 0 {
            return Err("restripe takes add= or remove=, not both".to_string());
        }
        plan.restripes.push(RestripeDecl {
            at,
            add_cubs,
            remove_cubs,
        });
        return Ok(());
    }
    let (&head, kvs) = rest.split_first().ok_or("clause needs a target")?;
    let args = Args::new(kvs)?;
    match verb {
        "drop" | "delay" | "dup" => {
            let (src, dst) = head
                .split_once('>')
                .ok_or_else(|| format!("expected src>dst, got {head:?}"))?;
            let (from, until) = args.window()?;
            let mut f = LinkFault {
                src: parse_node(src)?,
                dst: parse_node(dst)?,
                from,
                until,
                drop_prob: 0.0,
                extra_delay: SimDuration::ZERO,
                extra_jitter: SimDuration::ZERO,
                dup_prob: 0.0,
            };
            match verb {
                "drop" => f.drop_prob = parse_prob(args.get("prob")?)?,
                "dup" => f.dup_prob = parse_prob(args.get("prob")?)?,
                _ => {
                    f.extra_delay = parse_duration(args.get("extra")?)?;
                    if let Some(j) = args.opt("jitter") {
                        f.extra_jitter = parse_duration(j)?;
                    }
                }
            }
            plan.links.push(f);
        }
        "partition" => {
            let (a, b) = head
                .split_once('|')
                .ok_or_else(|| format!("expected groupA|groupB, got {head:?}"))?;
            let from = parse_time(args.get("from")?)?;
            let heal = parse_time(args.get("heal")?)?;
            if heal <= from {
                return Err("heal= must be after from=".to_string());
            }
            plan.partitions.push(Partition {
                a: parse_group(a)?,
                b: parse_group(b)?,
                from,
                heal,
            });
        }
        "disk-transient" => {
            let (cub, disk) = parse_disk_ref(head)?;
            let prob = parse_prob(args.get("prob")?)?;
            let (from, until) = args.window()?;
            plan.disks.push(DiskFault {
                cub,
                disk,
                kind: DiskFaultKind::Transient { prob, from, until },
            });
        }
        "disk-degraded" => {
            let (cub, disk) = parse_disk_ref(head)?;
            let factor: f64 = args
                .get("factor")?
                .parse()
                .map_err(|_| "bad factor=".to_string())?;
            if !(factor.is_finite() && factor >= 1.0) {
                return Err("factor= must be >= 1".to_string());
            }
            let (from, until) = args.window()?;
            plan.disks.push(DiskFault {
                cub,
                disk,
                kind: DiskFaultKind::Degraded {
                    factor,
                    from,
                    until,
                },
            });
        }
        "disk-kill" => {
            let (cub, disk) = parse_disk_ref(head)?;
            plan.disks.push(DiskFault {
                cub,
                disk,
                kind: DiskFaultKind::Death {
                    at: parse_time(args.get("at")?)?,
                },
            });
        }
        "crash" => {
            plan.process.push(ProcessFault::Crash {
                cub: parse_cub(head)?,
                at: parse_time(args.get("at")?)?,
            });
        }
        "restart" => {
            plan.process.push(ProcessFault::Restart {
                cub: parse_cub(head)?,
                at: parse_time(args.get("at")?)?,
            });
        }
        "freeze" => {
            let (from, until) = args.window()?;
            plan.process.push(ProcessFault::Freeze {
                cub: parse_cub(head)?,
                from,
                until,
            });
        }
        "power-domain" => {
            let cubs: Result<Vec<u32>, String> = head.split(',').map(parse_cub).collect();
            plan.process.push(ProcessFault::PowerDomain {
                cubs: cubs?,
                at: parse_time(args.get("at")?)?,
            });
        }
        other => return Err(format!("unknown clause verb {other:?}")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "
# the doc example
drop c1>c3 prob=0.3 from=2s until=5s
delay c1>* extra=20ms jitter=10ms from=0s until=10s
dup ctrl>c2 prob=0.05 from=1s until=2s
partition c0,c1|c2,c3 from=4s heal=6s
disk-transient c2:0 prob=0.5 from=3s until=6s
disk-degraded c2:0 factor=3 from=3s until=6s
disk-kill c2:0 at=5s
crash c1 at=9s
freeze c0 from=2s until=4s
power-domain c1,c2 at=9s
";

    #[test]
    fn example_scenario_parses() {
        let plan = FaultPlan::parse(EXAMPLE).expect("parses");
        assert_eq!(plan.links.len(), 3);
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.disks.len(), 3);
        assert_eq!(plan.process.len(), 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.links[0].drop_prob, 0.3);
        assert_eq!(plan.links[1].extra_delay, SimDuration::from_millis(20));
        assert_eq!(plan.links[1].src, NodeSel::Cub(1));
        assert_eq!(plan.links[1].dst, NodeSel::Any);
        assert_eq!(plan.links[2].dup_prob, 0.05);
        assert_eq!(
            plan.process[2],
            ProcessFault::PowerDomain {
                cubs: vec![1, 2],
                at: SimTime::from_secs(9)
            }
        );
    }

    #[test]
    fn parse_matches_builder() {
        let parsed = FaultPlan::parse("crash c1 at=9s\nfreeze c0 from=2s until=4s\n").unwrap();
        let built = FaultPlan::new().crash(1, SimTime::from_secs(9)).freeze(
            0,
            SimTime::from_secs(2),
            SimTime::from_secs(4),
        );
        assert_eq!(parsed, built);
    }

    #[test]
    fn durations_parse_with_units_and_fractions() {
        assert_eq!(parse_duration("2s").unwrap(), SimDuration::from_secs(2));
        assert_eq!(
            parse_duration("1.5s").unwrap(),
            SimDuration::from_millis(1500)
        );
        assert_eq!(
            parse_duration("250ms").unwrap(),
            SimDuration::from_millis(250)
        );
        assert_eq!(
            parse_duration("40us").unwrap(),
            SimDuration::from_nanos(40_000)
        );
        assert_eq!(parse_duration("7ns").unwrap(), SimDuration::from_nanos(7));
        assert_eq!(parse_duration("2min").unwrap(), SimDuration::from_secs(120));
        assert_eq!(
            parse_duration("1.5h").unwrap(),
            SimDuration::from_secs(5_400)
        );
        assert_eq!(
            parse_duration("24h").unwrap(),
            SimDuration::from_secs(86_400)
        );
        assert!(parse_duration("5").is_err(), "unit required");
        assert!(parse_duration("-1s").is_err());
    }

    #[test]
    fn malformed_clauses_name_the_line() {
        for (bad, needle) in [
            ("warp c1 at=2s", "unknown clause verb"),
            ("drop c1c3 prob=0.3 from=1s until=2s", "src>dst"),
            ("drop c1>c3 prob=1.5 from=1s until=2s", "[0, 1]"),
            ("drop c1>c3 prob=0.5 from=2s until=2s", "after from="),
            ("crash c1", "at="),
            ("crash ctrl at=2s", "expected a cub"),
            ("disk-kill c2 at=2s", "cN:disk"),
            ("partition c0|c1 from=3s heal=2s", "after from="),
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.contains("line 1"), "{err}");
            assert!(err.contains(needle), "{bad} -> {err}");
        }
    }

    #[test]
    fn restart_and_restripe_clauses_parse() {
        let plan = FaultPlan::parse("crash c1 at=9s\nrestart c1 at=15s\nrestripe at=20s add=1\n")
            .expect("parses");
        let built = FaultPlan::new()
            .crash(1, SimTime::from_secs(9))
            .restart(1, SimTime::from_secs(15))
            .restripe(SimTime::from_secs(20), 1);
        assert_eq!(plan, built);
        assert_eq!(
            plan.process[1],
            ProcessFault::Restart {
                cub: 1,
                at: SimTime::from_secs(15)
            }
        );
        assert_eq!(
            plan.restripes,
            vec![RestripeDecl {
                at: SimTime::from_secs(20),
                add_cubs: 1,
                remove_cubs: 0
            }]
        );
        assert!(!plan.is_empty());
        // A restripe-only plan is not empty either.
        assert!(!FaultPlan::new()
            .restripe(SimTime::from_secs(1), 1)
            .is_empty());
        // A shrink step parses to the same declaration the builder makes.
        let shrink = FaultPlan::parse("restripe at=25s remove=1\n").expect("parses");
        assert_eq!(
            shrink,
            FaultPlan::new().restripe_remove(SimTime::from_secs(25), 1)
        );

        for (bad, needle) in [
            ("restart c1", "at="),
            ("restart ctrl at=2s", "expected a cub"),
            ("restripe at=20s add=0", "at least 1"),
            ("restripe at=20s", "add="),
            ("restripe add=1", "at="),
            ("restripe at=20s remove=0", "at least 1"),
            ("restripe at=20s add=1 remove=1", "not both"),
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.contains(needle), "{bad} -> {err}");
        }
    }

    #[test]
    fn topology_matches_node_numbering() {
        let topo = Topology {
            num_cubs: 4,
            num_clients: 3,
            backup_controller: true,
        };
        assert!(topo.matches(NodeSel::Ctrl, 0));
        assert!(topo.matches(NodeSel::Cub(2), 3));
        assert!(topo.matches(NodeSel::Client(0), 5));
        assert!(topo.matches(NodeSel::Backup, 8));
        assert!(topo.matches(NodeSel::Any, 7));
        assert!(!topo.matches(NodeSel::Cub(2), 2));
        assert_eq!(topo.resolve(NodeSel::Any), None);
        assert_eq!(topo.resolve(NodeSel::Cub(0)), Some(1));
        let no_backup = Topology {
            backup_controller: false,
            ..topo
        };
        assert_eq!(no_backup.resolve(NodeSel::Backup), None);
    }

    #[test]
    fn windows_assign_stable_clause_ids() {
        let plan = FaultPlan::parse(EXAMPLE).unwrap();
        let windows = plan.windows();
        // 3 links + 1 partition + 2 windowed disk faults (death excluded).
        assert_eq!(windows.len(), 6);
        let ids: Vec<u32> = windows.iter().map(|w| w.clause).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(windows[3].from, SimTime::from_secs(4));
        assert_eq!(windows[3].until, SimTime::from_secs(6));
    }
}
