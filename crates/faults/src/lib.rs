//! tiger-faults: deterministic fault injection for the Tiger simulator.
//!
//! A [`FaultPlan`] declares *what goes wrong and when* — lossy, slow, or
//! partitioned links; flaky, slow, or dead disks; crashed, frozen, or
//! power-cut cubs — either built in code or parsed from a small text
//! format (see [`FaultPlan::parse`]). The system compiles a plan into
//! per-layer injectors ([`NetFaults`], [`DiskFaults`], [`ProcFaults`])
//! whose disabled form costs one pointer test per hook, exactly like the
//! `tiger-trace` gate, so the no-faults hot path stays free.
//!
//! Determinism: every fault decision draws from RNG streams forked under
//! the system seed's `"faults"` subtree, disjoint from every other stream
//! in the simulation. An empty plan compiles to nothing and perturbs
//! nothing; a fixed plan plus a seed reproduces the identical injection
//! sequence on every rerun, at any fleet thread count.
//!
//! The [`invariants`] module holds the plan-level checks the chaos runner
//! enforces — most importantly that every deadman declaration is
//! justified by a stall the plan actually caused.

pub mod inject;
pub mod invariants;
pub mod plan;

pub use inject::{
    DiskFaults, DiskVerdict, NetFaults, NetInjection, NetInjectionKind, NetPerturb, ProcFaults,
};
pub use invariants::{
    check_deadman_justified, check_deadman_justified_probabilistic, check_deadman_justified_with,
    drop_silence_intervals, loss_window_bound, silence_probability, stall_intervals, Intervals,
    ObservedDeclare, ObservedStall,
};
pub use plan::{
    parse_duration, DiskFault, DiskFaultKind, FaultPlan, FaultWindow, LinkFault, NodeSel,
    Partition, ProcessFault, RestripeDecl, Topology,
};
