//! High-churn and randomized ("chaos") runs: the §4.1.3 races, exercised
//! hard, with the omniscient checker watching.
//!
//! "If the inserting cub believes that the slot is empty because it saw a
//! deschedule request for the previous occupant, any cub seeing the newly
//! inserted viewer must also have seen the deschedule, or never have seen
//! the old occupant in the first place." A violation of that argument
//! shows up as a view `Conflict` (counted as a violation) or as an
//! omniscient-checker finding; churning stop/start traffic at high load is
//! how to provoke it.

use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::ids::ViewerInstance;
use tiger_layout::CubId;
use tiger_sim::{Bandwidth, RngTree, SimDuration, SimTime};

fn rate() -> Bandwidth {
    Bandwidth::from_mbit_per_sec(2)
}

#[test]
fn stop_start_churn_at_high_load_stays_coherent() {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    let mut sys = TigerSystem::new(cfg);
    sys.enable_omniscient();
    let file = sys.add_file(rate(), SimDuration::from_secs(600));
    let capacity = sys.shared().params.capacity();

    // Fill to ~90%.
    let fill = capacity * 9 / 10;
    let mut live: Vec<ViewerInstance> = Vec::new();
    for i in 0..u64::from(fill) {
        let client = sys.add_client();
        live.push(sys.request_start(SimTime::from_millis(100 + i * 100), client, file));
    }
    sys.run_until(SimTime::from_secs(40));

    // Churn: every 2 s stop one viewer and immediately request a new one —
    // the new insertion often lands in the just-freed slot, exercising the
    // deschedule/insert ordering argument.
    let mut rng = RngTree::new(17).fork("churn", 0);
    let mut t = SimTime::from_secs(40);
    for _ in 0..30 {
        let idx = rng.gen_range(0..live.len());
        let victim = live.swap_remove(idx);
        sys.request_stop(t, victim);
        let client = sys.add_client();
        live.push(sys.request_start(t + SimDuration::from_millis(50), client, file));
        t = t + SimDuration::from_secs(2);
    }
    sys.run_until(t + SimDuration::from_secs(30));

    let violations = sys.take_violations();
    assert!(
        violations.is_empty(),
        "churn broke coherence: {violations:?}"
    );
    // Stream accounting stayed consistent.
    let active = sys.controller().active_streams();
    assert!(
        active <= capacity,
        "churn overcommitted the schedule: {active} > {capacity}"
    );
    // No viewer that survived the churn has gaps.
    let mut gaps = 0u64;
    for c in sys.clients() {
        for (_, v) in c.viewers() {
            gaps += u64::from(v.blocks_missing());
        }
    }
    assert_eq!(gaps, 0, "churn caused delivery gaps");
}

#[test]
fn chaos_runs_stay_coherent_across_seeds() {
    // Randomized workloads: random starts, stops, and one random failure.
    // Invariants: zero checker violations, no capacity breach, and no
    // surviving stream starves.
    for seed in [1u64, 7, 1997] {
        let mut cfg = TigerConfig::small_test();
        cfg.disk = cfg.disk.without_blips();
        cfg.seed = seed;
        cfg.deadman_timeout = SimDuration::from_millis(1_500);
        let mut sys = TigerSystem::new(cfg);
        sys.enable_omniscient();
        let files: Vec<_> = (0..3)
            .map(|_| sys.add_file(rate(), SimDuration::from_secs(120)))
            .collect();
        let mut rng = RngTree::new(seed).fork("chaos", 0);
        let capacity = sys.shared().params.capacity();
        let mut live: Vec<ViewerInstance> = Vec::new();
        let mut t = SimTime::from_millis(100);
        let kill_at = SimTime::from_secs(30 + rng.gen_range(0u64..20));
        let victim_cub = CubId(rng.gen_range(0u32..4));
        sys.fail_cub_at(kill_at, victim_cub);
        for _ in 0..120 {
            t = t + SimDuration::from_millis(rng.gen_range(100u64..900));
            if live.len() < (capacity as usize) * 3 / 4 && rng.gen_bool(0.7) {
                let client = sys.add_client();
                let file = files[rng.gen_range(0..files.len())];
                live.push(sys.request_start(t, client, file));
            } else if !live.is_empty() {
                let idx = rng.gen_range(0..live.len());
                sys.request_stop(t, live.swap_remove(idx));
            }
        }
        sys.run_until(t + SimDuration::from_secs(140));

        let violations = sys.take_violations();
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        assert!(sys.controller().active_streams() <= capacity, "seed {seed}");
        for c in sys.clients() {
            for (_, v) in c.viewers() {
                assert_eq!(
                    v.tail_missing(),
                    0,
                    "seed {seed}: a surviving stream starved (hw {:?})",
                    v.high_water
                );
            }
        }
    }
}
