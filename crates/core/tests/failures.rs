//! Failure-mode protocol tests: multi-failure bridging, data-loss
//! exposure, controller rerouting, and detection behaviour.

use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::{CubId, MirrorPlacement, StripeConfig};
use tiger_sim::{Bandwidth, SimDuration, SimTime};

fn rate() -> Bandwidth {
    Bandwidth::from_mbit_per_sec(2)
}

/// An 8-cub system tolerant enough for the multi-failure scenarios.
fn eight_cubs() -> TigerConfig {
    let mut cfg = TigerConfig::small_test();
    cfg.stripe = StripeConfig::new(8, 1, 2);
    cfg.num_clients = 8;
    cfg.disk = cfg.disk.without_blips();
    cfg.deadman_timeout = SimDuration::from_millis(1_500);
    cfg
}

#[test]
fn two_distant_failures_survive() {
    // Decluster 2: failures more than two disks apart lose no data (§2.3).
    let mut sys = TigerSystem::new(eight_cubs());
    let file = sys.add_file(rate(), SimDuration::from_secs(100));
    let mut viewers = Vec::new();
    for i in 0..8u64 {
        let client = sys.add_client();
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
        ));
    }
    sys.fail_cub_at(SimTime::from_secs(20), CubId(1));
    sys.fail_cub_at(SimTime::from_secs(30), CubId(5));
    sys.run_until(SimTime::from_secs(120));
    for (client, v) in &viewers {
        let p = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        // Each failure costs at most the detection window; streams survive.
        assert!(
            p.tail_missing() == 0,
            "stream starved after distant double failure"
        );
        assert!(
            p.blocks_missing() <= 8,
            "lost {} blocks; mirrors should cover both failures",
            p.blocks_missing()
        );
    }
}

#[test]
fn adjacent_failures_lose_data_but_streams_continue() {
    // §2.3: "Even if Tiger suffers the failure of two cubs near to one
    // another, it will attempt to continue to send streams, although these
    // streams will necessarily miss some blocks of data. If two or more
    // consecutive cubs are failed, the preceding living cub will send
    // scheduling information to the succeeding living cub, bridging the
    // gap."
    let mut sys = TigerSystem::new(eight_cubs());
    let file = sys.add_file(rate(), SimDuration::from_secs(100));
    let mut viewers = Vec::new();
    for i in 0..8u64 {
        let client = sys.add_client();
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
        ));
    }
    sys.fail_cub_at(SimTime::from_secs(20), CubId(3));
    sys.fail_cub_at(SimTime::from_secs(20), CubId(4));
    sys.run_until(SimTime::from_secs(130));
    let mut some_loss = false;
    for (client, v) in &viewers {
        let p = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        // The gap is bridged: schedule information keeps flowing, so the
        // stream reaches its final blocks. (The very last block may itself
        // be unrecoverable if it sits on the dead pair, so allow a tail of
        // one.)
        assert!(
            p.tail_missing() <= 1,
            "stream starved: gap bridging failed (high water {:?})",
            p.high_water
        );
        assert!(p.high_water.unwrap_or(0) >= 97, "stream stopped early");
        // ...but the blocks on the dead pair whose mirror pieces were on
        // the dead pair are unrecoverable.
        some_loss |= p.blocks_missing() > 0;
        // Bounded: ~2 of every 8 blocks plus the detection window.
        let missing = u64::from(p.blocks_missing());
        assert!(
            missing < 45,
            "lost {missing} of ~100: more than the dead span"
        );
    }
    assert!(
        some_loss,
        "adjacent failures must lose the doubly-dead pieces"
    );
}

#[test]
fn exposure_prediction_matches_observed_loss() {
    // The layout's second_failure_exposure says which second failures lose
    // data. Verify both directions against the running system.
    let placement = MirrorPlacement::new(StripeConfig::new(8, 1, 2));
    // disk i is on cub i (one disk per cub), so disk exposure = cub
    // exposure here.
    let exposed = placement.second_failure_exposure(tiger_layout::DiskId(3));
    assert!(exposed.contains(&tiger_layout::DiskId(4)));
    assert!(!exposed.contains(&tiger_layout::DiskId(6)));

    let run = |second: CubId| -> u64 {
        let mut sys = TigerSystem::new(eight_cubs());
        let file = sys.add_file(rate(), SimDuration::from_secs(80));
        let mut viewers = Vec::new();
        for i in 0..6u64 {
            let client = sys.add_client();
            viewers.push((
                client,
                sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
            ));
        }
        sys.fail_cub_at(SimTime::from_secs(20), CubId(3));
        sys.fail_cub_at(SimTime::from_secs(35), second);
        sys.run_until(SimTime::from_secs(110));
        // Count losses well after both detection windows (blocks due after
        // t=45): unrecoverable data, not detection transients.
        let mut steady_loss = 0u64;
        for (client, v) in &viewers {
            let p = sys.clients()[*client as usize]
                .viewer(v)
                .expect("viewer exists");
            let first = p.first_block_at.expect("started").as_secs_f64();
            let high = p.high_water.unwrap_or(0);
            for b in 0..=high {
                let due = first + f64::from(b);
                if due > 45.0 && !p.block_received(b) {
                    steady_loss += 1;
                }
            }
        }
        steady_loss
    };
    let exposed_loss = run(CubId(4)); // within decluster distance: loses data
    let safe_loss = run(CubId(6)); // outside: survives
    assert!(exposed_loss > 0, "adjacent second failure must lose data");
    assert_eq!(safe_loss, 0, "distant second failure must be fully covered");
}

#[test]
fn starts_route_around_a_dead_cub() {
    // A file whose first block lives on the failed cub can still be
    // started: the controller routes to the acting successor, which owns
    // the dead disk's slots.
    let mut sys = TigerSystem::new(eight_cubs());
    // Find a file whose start disk is on cub 2.
    let mut file = None;
    for _ in 0..64 {
        let f = sys.add_file(rate(), SimDuration::from_secs(40));
        let meta = *sys.shared().catalog.get(f).expect("exists");
        if sys.shared().params.stripe().cub_of(meta.start_disk) == CubId(2) {
            file = Some(f);
            break;
        }
    }
    let file = file.expect("some file starts on cub 2");
    sys.fail_cub_at(SimTime::from_secs(5), CubId(2));
    sys.run_until(SimTime::from_secs(12)); // past detection
    let client = sys.add_client();
    let viewer = sys.request_start(SimTime::from_secs(12), client, file);
    sys.run_until(SimTime::from_secs(60));
    let p = sys.clients()[client as usize]
        .viewer(&viewer)
        .expect("viewer exists");
    assert!(p.first_block_at.is_some(), "start never served");
    // Block 0 arrives via mirror pieces (its primary disk is dead).
    assert!(p.block_received(0), "first block must come from mirrors");
    assert!(
        p.blocks_received() >= 38,
        "only {} blocks arrived",
        p.blocks_received()
    );
}

#[test]
fn redundant_start_survives_primary_target_failure() {
    // The controller sends each start to the primary cub *and* its
    // successor; if the primary dies before inserting, the successor
    // promotes the redundant copy.
    let mut sys = TigerSystem::new(eight_cubs());
    let mut file = None;
    for _ in 0..64 {
        let f = sys.add_file(rate(), SimDuration::from_secs(40));
        let meta = *sys.shared().catalog.get(f).expect("exists");
        if sys.shared().params.stripe().cub_of(meta.start_disk) == CubId(6) {
            file = Some(f);
            break;
        }
    }
    let file = file.expect("some file starts on cub 6");
    // Kill cub 6 an instant after the start request is routed to it: the
    // request is in flight or queued, not yet inserted... or inserted but
    // unserved. Either way the viewer must eventually play.
    let client = sys.add_client();
    let viewer = sys.request_start(SimTime::from_millis(1_000), client, file);
    sys.fail_cub_at(SimTime::from_millis(1_030), CubId(6));
    sys.run_until(SimTime::from_secs(70));
    let p = sys.clients()[client as usize]
        .viewer(&viewer)
        .expect("viewer exists");
    assert!(
        p.first_block_at.is_some(),
        "start lost with its primary target (redundant routing failed)"
    );
    assert!(p.blocks_received() >= 35, "got {}", p.blocks_received());
}

#[test]
fn failure_detection_is_reported_once_per_failure() {
    let mut sys = TigerSystem::new(eight_cubs());
    let file = sys.add_file(rate(), SimDuration::from_secs(60));
    let client = sys.add_client();
    sys.request_start(SimTime::from_millis(100), client, file);
    sys.fail_cub_at(SimTime::from_secs(10), CubId(4));
    sys.run_until(SimTime::from_secs(70));
    let detections: Vec<_> = sys
        .metrics()
        .failure_detections
        .iter()
        .filter(|&&(_, failed)| failed == 4)
        .collect();
    assert_eq!(detections.len(), 1, "duplicate detections: {detections:?}");
}
