//! End-to-end tests of the `tiger-coded` redundancy backend: healthy
//! service assembles every block from `k` shard sends, a machine failure
//! is covered by degraded reads from any `k` surviving shards, and the
//! mirrored default is byte-identical with the backend compiled in.

use tiger_core::{RedundancyMode, TigerConfig, TigerSystem};
use tiger_layout::{CubId, StripeConfig};
use tiger_sim::{Bandwidth, SimDuration, SimTime};
use tiger_trace::TraceEvent;

fn rate() -> Bandwidth {
    Bandwidth::from_mbit_per_sec(2)
}

/// The small test system with the coded backend on (k = 2, n = 4 shards
/// over 4 disks).
fn coded_config() -> TigerConfig {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    cfg.redundancy = RedundancyMode::Coded;
    cfg
}

/// An 8-cub coded system for failure scenarios: one dead machine leaves
/// 3 of every block's 4 shards, and any 2 reconstruct.
fn eight_cubs_coded() -> TigerConfig {
    let mut cfg = coded_config();
    cfg.stripe = StripeConfig::new(8, 1, 2);
    cfg.num_clients = 8;
    cfg.deadman_timeout = SimDuration::from_millis(1_500);
    cfg
}

#[test]
fn coded_single_viewer_plays_to_completion() {
    let mut sys = TigerSystem::new(coded_config());
    sys.enable_omniscient();
    let file = sys.add_file(rate(), SimDuration::from_secs(12));
    let client = sys.add_client();
    sys.request_start(SimTime::from_millis(50), client, file);
    sys.run_until(SimTime::from_secs(30));
    let report = sys.client_report(client);
    assert_eq!(report.completed_viewers, 1, "{report:?}");
    assert_eq!(report.blocks_missing, 0);
    assert!(sys.take_violations().is_empty());
    assert_eq!(sys.controller().active_streams(), 0);
}

#[test]
fn coded_staggered_viewers_all_complete() {
    let mut sys = TigerSystem::new(coded_config());
    sys.enable_omniscient();
    let files: Vec<_> = (0..4)
        .map(|_| sys.add_file(rate(), SimDuration::from_secs(20)))
        .collect();
    for i in 0..12u64 {
        let client = sys.add_client();
        sys.request_start(
            SimTime::from_millis(100 + i * 730),
            client,
            files[(i % 4) as usize],
        );
    }
    sys.run_until(SimTime::from_secs(60));
    let report = sys.all_clients_report();
    assert_eq!(report.completed_viewers, 12, "{report:?}");
    assert_eq!(report.blocks_missing, 0);
    assert!(
        sys.take_violations().is_empty(),
        "{:?}",
        sys.take_violations()
    );
    assert_eq!(sys.metrics().loss.server_missed, 0);
}

#[test]
fn coded_capacity_exceeds_mirrored_at_k2() {
    // At k = 2 the coded worst-case service time (two half-block shard
    // reads) beats mirroring's full block + 1/decluster piece, so the
    // same hardware admits more streams. (At k = 4 the relation flips;
    // see docs/CODED.md.)
    let mirrored = TigerSystem::new(TigerConfig::small_test());
    let coded = TigerSystem::new(coded_config());
    let m = mirrored.shared().params.capacity();
    let c = coded.shared().params.capacity();
    assert!(c > m, "coded capacity {c} should exceed mirrored {m}");
}

#[test]
fn coded_survives_single_cub_failure_without_data_loss_after_detection() {
    // k = 2, n = 4: one dead machine kills at most one shard of any
    // block, leaving 3 ≥ k survivors — unlike mirroring, NO block is
    // unrecoverable. Loss is bounded by the failure-detection window.
    let mut sys = TigerSystem::new(eight_cubs_coded());
    sys.enable_trace(65_536);
    let file = sys.add_file(rate(), SimDuration::from_secs(100));
    let mut viewers = Vec::new();
    for i in 0..8u64 {
        let client = sys.add_client();
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
        ));
    }
    sys.fail_cub_at(SimTime::from_secs(20), CubId(3));
    sys.run_until(SimTime::from_secs(130));
    for (client, v) in &viewers {
        let p = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        assert!(p.tail_missing() == 0, "stream starved after failure");
        // Only blocks in flight during the detection window are lost.
        assert!(
            p.blocks_missing() <= 6,
            "lost {} blocks; any-k reconstruction should cover the rest",
            p.blocks_missing()
        );
    }
    let records = sys.tracer().records();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::CodedRepair { .. })),
        "acting successor never created coded repair records"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::DegradedPieceRead { .. })),
        "no holder traced a degraded shard read"
    );
}

#[test]
fn coded_run_is_deterministic() {
    // Two identical coded runs (holder choice ranks the load index;
    // nothing consults an RNG) produce identical client reports.
    let run = || {
        let mut sys = TigerSystem::new(eight_cubs_coded());
        let file = sys.add_file(rate(), SimDuration::from_secs(40));
        for i in 0..6u64 {
            let client = sys.add_client();
            sys.request_start(SimTime::from_millis(100 + i * 500), client, file);
        }
        sys.fail_cub_at(SimTime::from_secs(15), CubId(2));
        sys.run_until(SimTime::from_secs(60));
        format!("{:?}", sys.all_clients_report())
    };
    assert_eq!(run(), run());
}
