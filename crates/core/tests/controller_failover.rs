//! Controller fault tolerance — the paper's stated future work.
//!
//! §2.3: "While the Tiger controller is a single point of failure in the
//! current implementation, the distributed schedule work described in this
//! paper removes the major function that the controller in a centralized
//! Tiger system would have. The Netshow product group plans on making the
//! remaining functions of the controller fault tolerant."
//!
//! These tests verify both halves: (1) running streams never depend on the
//! controller at all (the paper's key point); (2) a hot-standby backup
//! restores start/stop service after the primary dies.

use tiger_core::{TigerConfig, TigerSystem};
use tiger_sim::{Bandwidth, SimDuration, SimTime};

fn quiet(backup: bool) -> TigerConfig {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    cfg.backup_controller = backup;
    cfg
}

fn rate() -> Bandwidth {
    Bandwidth::from_mbit_per_sec(2)
}

#[test]
fn running_streams_survive_controller_death_without_backup() {
    // The distributed schedule's headline property: once started, a stream
    // needs only the ring of cubs — the controller can die and nobody's
    // video glitches.
    let mut sys = TigerSystem::new(quiet(false));
    let file = sys.add_file(rate(), SimDuration::from_secs(60));
    let mut viewers = Vec::new();
    for i in 0..10u64 {
        let client = sys.add_client();
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
        ));
    }
    sys.fail_controller_at(SimTime::from_secs(10));
    sys.run_until(SimTime::from_secs(80));
    for (client, v) in &viewers {
        let p = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        assert!(p.complete(), "a stream depended on the controller");
        assert_eq!(p.blocks_missing(), 0);
    }
}

#[test]
fn without_backup_no_new_starts_after_controller_death() {
    let mut sys = TigerSystem::new(quiet(false));
    let file = sys.add_file(rate(), SimDuration::from_secs(30));
    sys.fail_controller_at(SimTime::from_secs(5));
    let client = sys.add_client();
    let v = sys.request_start(SimTime::from_secs(10), client, file);
    sys.run_until(SimTime::from_secs(40));
    let p = sys.clients()[client as usize]
        .viewer(&v)
        .expect("registered");
    assert!(
        p.first_block_at.is_none(),
        "a start succeeded with no controller and no backup"
    );
}

#[test]
fn backup_restores_starts_and_stops() {
    let mut sys = TigerSystem::new(quiet(true));
    let file = sys.add_file(rate(), SimDuration::from_secs(120));
    // One stream started under the primary...
    let c0 = sys.add_client();
    let v0 = sys.request_start(SimTime::from_millis(100), c0, file);
    // ... then the primary dies.
    sys.fail_controller_at(SimTime::from_secs(10));
    // A start after the failover timeout must succeed via the backup.
    let c1 = sys.add_client();
    let v1 = sys.request_start(SimTime::from_secs(20), c1, file);
    // And a stop of the pre-failure stream must work too: the backup
    // learned v0's slot from the mirrored commit notice.
    sys.request_stop(SimTime::from_secs(40), v0);
    sys.run_until(SimTime::from_secs(90));

    let p1 = sys.clients()[c1 as usize]
        .viewer(&v1)
        .expect("viewer exists");
    assert!(
        p1.blocks_received() >= 60,
        "post-failover start got only {} blocks",
        p1.blocks_received()
    );
    let p0 = sys.clients()[c0 as usize]
        .viewer(&v0)
        .expect("viewer exists");
    assert!(p0.stopped);
    assert!(
        p0.blocks_received() < 60,
        "stop via the backup did not take: {} blocks delivered",
        p0.blocks_received()
    );
    assert_eq!(p0.blocks_missing(), 0, "no gaps before the stop");
}

#[test]
fn backup_also_covers_cub_failure_routing() {
    // After promotion, the backup must route around failed cubs (it
    // mirrors failure notices before taking over).
    let mut cfg = quiet(true);
    cfg.deadman_timeout = SimDuration::from_millis(1_500);
    let mut sys = TigerSystem::new(cfg);
    let file = sys.add_file(rate(), SimDuration::from_secs(60));
    sys.fail_cub_at(SimTime::from_secs(5), tiger_layout::CubId(1));
    sys.fail_controller_at(SimTime::from_secs(10));
    let client = sys.add_client();
    let v = sys.request_start(SimTime::from_secs(20), client, file);
    sys.run_until(SimTime::from_secs(90));
    let p = sys.clients()[client as usize]
        .viewer(&v)
        .expect("viewer exists");
    assert!(
        p.blocks_received() >= 50,
        "start under backup + failed cub got {} blocks",
        p.blocks_received()
    );
}
