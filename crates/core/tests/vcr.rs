//! VCR operations: pause/resume and seek, built on the §4.1.2 deschedule
//! semantics. The instance (incarnation) numbers exist precisely so that a
//! viewer can stop and restart "quickly" without the old deschedule killing
//! the new play — these tests exercise that machinery end-to-end.

use tiger_core::{TigerConfig, TigerSystem};
use tiger_sim::{Bandwidth, SimDuration, SimTime};

fn quiet() -> TigerConfig {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    cfg
}

fn rate() -> Bandwidth {
    Bandwidth::from_mbit_per_sec(2)
}

#[test]
fn start_mid_file_plays_the_tail_only() {
    let mut sys = TigerSystem::new(quiet());
    sys.enable_omniscient();
    let file = sys.add_file(rate(), SimDuration::from_secs(30));
    let client = sys.add_client();
    let v = sys.request_start_at(SimTime::from_millis(50), client, file, 20);
    sys.run_until(SimTime::from_secs(20));
    let p = sys.clients()[client as usize]
        .viewer(&v)
        .expect("viewer exists");
    assert!(p.complete(), "blocks 20..30 all arrived");
    assert_eq!(p.blocks_received(), 10, "only the tail is expected");
    assert!(
        !p.block_received(5) || p.base_block == 20,
        "pre-base blocks are padding"
    );
    assert!(sys.take_violations().is_empty());
}

#[test]
fn pause_then_resume_completes_the_file() {
    let mut sys = TigerSystem::new(quiet());
    sys.enable_omniscient();
    let file = sys.add_file(rate(), SimDuration::from_secs(40));
    let client = sys.add_client();
    let v = sys.request_start(SimTime::from_millis(50), client, file);
    // Pause after ~12 s of play, resume 10 s later.
    sys.request_pause(SimTime::from_secs(12), v);
    let resumed = sys.request_resume(SimTime::from_secs(22), v);
    sys.run_until(SimTime::from_secs(70));

    let clients = &sys.clients()[client as usize];
    let before = clients.viewer(&v).expect("paused instance exists");
    let after = clients.viewer(&resumed).expect("resumed instance exists");
    assert!(before.stopped);
    let got_before = before.blocks_received();
    assert!(
        (8..=15).contains(&got_before),
        "paused after {got_before} blocks"
    );
    // The resumed instance picks up exactly where the pause left off and
    // finishes the file: between them, every block arrived exactly once.
    assert_eq!(
        after.base_block,
        before.high_water.expect("played some") + 1
    );
    assert!(after.complete(), "resume did not finish the file");
    assert_eq!(
        u32::from(got_before) + after.blocks_received(),
        40,
        "pause+resume must cover the file exactly"
    );
    assert!(
        sys.take_violations().is_empty(),
        "{:?}",
        sys.take_violations()
    );
}

#[test]
fn immediate_resume_survives_stale_deschedule() {
    // §4.1.2: "a viewer cannot be spontaneously rescheduled" and a
    // restarted viewer must not be killed by its predecessor's deschedule
    // — the incarnation number does the disambiguation. Resume right on
    // the heels of the pause so the deschedule and the new insert race
    // through the ring together.
    let mut sys = TigerSystem::new(quiet());
    sys.enable_omniscient();
    let file = sys.add_file(rate(), SimDuration::from_secs(30));
    let client = sys.add_client();
    let v = sys.request_start(SimTime::from_millis(50), client, file);
    sys.request_pause(SimTime::from_secs(10), v);
    let resumed = sys.request_resume(SimTime::from_millis(10_050), v);
    sys.run_until(SimTime::from_secs(60));
    let after = sys.clients()[client as usize]
        .viewer(&resumed)
        .expect("resumed instance exists");
    assert!(
        after.complete(),
        "stale deschedule killed the resumed incarnation (got {} of {})",
        after.blocks_received(),
        30 - after.base_block
    );
    assert!(
        sys.take_violations().is_empty(),
        "{:?}",
        sys.take_violations()
    );
}

#[test]
fn seek_jumps_forward_and_back() {
    let mut sys = TigerSystem::new(quiet());
    let file = sys.add_file(rate(), SimDuration::from_secs(60));
    let client = sys.add_client();
    let v = sys.request_start(SimTime::from_millis(50), client, file);
    // After ~8 s, jump to block 40 (fast-forward).
    let fwd = sys.request_seek(SimTime::from_secs(8), v, 40);
    // After ~10 more seconds, jump back to block 10 (rewind).
    let back = sys.request_seek(SimTime::from_secs(18), fwd, 10);
    sys.run_until(SimTime::from_secs(90));

    let clients = &sys.clients()[client as usize];
    let first = clients.viewer(&v).expect("original instance");
    let jumped = clients.viewer(&fwd).expect("fast-forward instance");
    let rewound = clients.viewer(&back).expect("rewind instance");
    assert!(first.stopped);
    assert!(jumped.stopped);
    assert_eq!(jumped.base_block, 40);
    assert!(jumped.blocks_received() >= 5, "fast-forward played");
    assert_eq!(rewound.base_block, 10);
    assert!(
        rewound.complete(),
        "rewound play should run to end of file: {} of {}",
        rewound.blocks_received(),
        60 - 10
    );
}

#[test]
fn resume_at_eof_is_a_noop() {
    let mut sys = TigerSystem::new(quiet());
    let file = sys.add_file(rate(), SimDuration::from_secs(8));
    let client = sys.add_client();
    let v = sys.request_start(SimTime::from_millis(50), client, file);
    sys.run_until(SimTime::from_secs(15)); // plays to completion
    let resumed = sys.request_resume(SimTime::from_secs(16), v);
    sys.run_until(SimTime::from_secs(25));
    // high_water+1 == num_blocks: nothing to play, no new viewer appears.
    assert!(sys.clients()[client as usize].viewer(&resumed).is_none());
    assert_eq!(sys.controller().active_streams(), 0);
}
