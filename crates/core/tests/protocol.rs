//! End-to-end protocol tests on small Tiger systems.
//!
//! These run the full distributed machinery — controller routing, ownership
//! insertion, ring forwarding, deschedules, deadman detection, mirror
//! takeover — and check both client-observable behaviour and the
//! omniscient hallucination checker (every cub action must be one the
//! never-materialized global schedule would permit).

use tiger_core::{ForwardingPolicy, TigerConfig, TigerSystem};
use tiger_layout::CubId;
use tiger_sim::{Bandwidth, SimDuration, SimTime};

fn quiet_config() -> TigerConfig {
    let mut cfg = TigerConfig::small_test();
    cfg.disk = cfg.disk.without_blips();
    cfg
}

fn rate() -> Bandwidth {
    Bandwidth::from_mbit_per_sec(2)
}

#[test]
fn single_viewer_plays_to_completion() {
    let mut sys = TigerSystem::new(quiet_config());
    sys.enable_omniscient();
    let file = sys.add_file(rate(), SimDuration::from_secs(12));
    let client = sys.add_client();
    sys.request_start(SimTime::from_millis(50), client, file);
    sys.run_until(SimTime::from_secs(30));
    let report = sys.client_report(client);
    assert_eq!(report.completed_viewers, 1);
    assert_eq!(report.blocks_missing, 0);
    assert!(sys.take_violations().is_empty());
    // EOF released the stream slot at the controller.
    assert_eq!(sys.controller().active_streams(), 0);
}

#[test]
fn staggered_viewers_all_complete() {
    let mut sys = TigerSystem::new(quiet_config());
    sys.enable_omniscient();
    let files: Vec<_> = (0..4)
        .map(|_| sys.add_file(rate(), SimDuration::from_secs(20)))
        .collect();
    for i in 0..16u64 {
        let client = sys.add_client();
        sys.request_start(
            SimTime::from_millis(100 + i * 730),
            client,
            files[(i % 4) as usize],
        );
    }
    sys.run_until(SimTime::from_secs(60));
    let report = sys.all_clients_report();
    assert_eq!(report.completed_viewers, 16, "{report:?}");
    assert_eq!(report.blocks_missing, 0);
    assert_eq!(report.never_started, 0);
    assert!(
        sys.take_violations().is_empty(),
        "{:?}",
        sys.take_violations()
    );
    assert_eq!(sys.metrics().loss.server_missed, 0);
}

#[test]
fn blocks_arrive_equitemporally() {
    // Once started, a viewer receives one block per block play time; the
    // schedule guarantees the spacing.
    let mut sys = TigerSystem::new(quiet_config());
    let file = sys.add_file(rate(), SimDuration::from_secs(10));
    let client = sys.add_client();
    let instance = sys.request_start(SimTime::from_millis(50), client, file);
    sys.run_until(SimTime::from_secs(20));
    let v = sys.clients()[client as usize]
        .viewer(&instance)
        .expect("viewer exists");
    assert!(v.complete());
    // First block took the startup path; transmission is paced over one
    // block play time, so latency is at least 1 s plus scheduling lead.
    let latency = v.start_latency_secs().expect("started");
    assert!(latency >= 1.0, "startup latency {latency}");
    assert!(latency < 6.0, "startup latency {latency} too high at idle");
}

#[test]
fn deschedule_stops_delivery_and_frees_slot() {
    let mut sys = TigerSystem::new(quiet_config());
    sys.enable_omniscient();
    let file = sys.add_file(rate(), SimDuration::from_secs(60));
    let client = sys.add_client();
    let instance = sys.request_start(SimTime::from_millis(50), client, file);
    sys.request_stop(SimTime::from_secs(10), instance);
    sys.run_until(SimTime::from_secs(40));
    let v = sys.clients()[client as usize]
        .viewer(&instance)
        .expect("viewer exists");
    assert!(v.stopped);
    // Delivery ceased shortly after the stop: far fewer than 35 blocks.
    let got = v.blocks_received();
    assert!((5..=16).contains(&got), "received {got} blocks");
    assert_eq!(v.blocks_missing(), 0, "no gaps before the stop");
    assert_eq!(sys.controller().active_streams(), 0);
    assert!(sys.take_violations().is_empty());

    // The freed slot is reusable: a new viewer starts fine.
    let c2 = sys.add_client();
    sys.request_start(SimTime::from_secs(41), c2, file);
    sys.run_until(SimTime::from_secs(50));
    assert_eq!(sys.controller().active_streams(), 1);
}

#[test]
fn capacity_is_never_exceeded() {
    let mut sys = TigerSystem::new(quiet_config());
    sys.enable_omniscient();
    let capacity = sys.shared().params.capacity();
    let file = sys.add_file(rate(), SimDuration::from_secs(300));
    for i in 0..u64::from(capacity) + 10 {
        let client = sys.add_client();
        sys.request_start(SimTime::from_millis(100 + i * 40), client, file);
    }
    sys.run_until(SimTime::from_secs(90));
    let active = sys.controller().active_streams();
    assert!(active <= capacity, "{active} > capacity {capacity}");
    // The system actually fills up (ownership scanning finds the slots).
    assert!(
        active >= capacity - 1,
        "only {active} of {capacity} started"
    );
    assert!(
        sys.take_violations().is_empty(),
        "{:?}",
        sys.take_violations()
    );
}

#[test]
fn startup_latency_grows_with_load() {
    let mut sys = TigerSystem::new(quiet_config());
    let file = sys.add_file(rate(), SimDuration::from_secs(600));
    let capacity = u64::from(sys.shared().params.capacity());
    // Fill ~90% of the schedule.
    let fill = capacity * 9 / 10;
    for i in 0..fill {
        let client = sys.add_client();
        sys.request_start(SimTime::from_millis(100 + i * 120), client, file);
    }
    // A late request must wait for a free owned slot.
    let c = sys.add_client();
    let late = sys.request_start(SimTime::from_secs(80), c, file);
    sys.run_until(SimTime::from_secs(120));
    let samples = &sys.metrics().start_latencies;
    let idle_mean = {
        let lows: Vec<f64> = samples
            .iter()
            .filter(|(l, _)| *l < 0.3)
            .map(|&(_, s)| s)
            .collect();
        lows.iter().sum::<f64>() / lows.len() as f64
    };
    let late_latency = sys.clients()[c as usize]
        .viewer(&late)
        .and_then(|v| v.start_latency_secs())
        .expect("late viewer started");
    assert!(
        late_latency >= idle_mean,
        "late start {late_latency:.2}s should not beat idle mean {idle_mean:.2}s"
    );
}

#[test]
fn cub_failure_mirrors_take_over() {
    let mut cfg = quiet_config();
    cfg.deadman_timeout = SimDuration::from_millis(1_500);
    let mut sys = TigerSystem::new(cfg);
    let file = sys.add_file(rate(), SimDuration::from_secs(90));
    let mut viewers = Vec::new();
    for i in 0..8u64 {
        let client = sys.add_client();
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 500), client, file),
        ));
    }
    // Let the system reach steady state, then cut a cub's power.
    sys.fail_cub_at(SimTime::from_secs(20), CubId(2));
    sys.run_until(SimTime::from_secs(110));

    // Detection happened and was recorded.
    assert!(
        !sys.metrics().failure_detections.is_empty(),
        "deadman never fired"
    );
    let (detected_at, failed) = sys.metrics().failure_detections[0];
    assert_eq!(failed, 2);
    let detection_delay = detected_at.saturating_since(SimTime::from_secs(20));
    assert!(
        detection_delay.as_secs_f64() < 4.0,
        "detection took {detection_delay}"
    );

    // Viewers kept playing: losses are confined to the detection window.
    // With a ~1.5 s timeout each viewer misses at most a few blocks out of
    // 90 (the §5 power-cut experiment measured an ~8 s window with a longer
    // timeout).
    for (client, instance) in &viewers {
        let v = sys.clients()[*client as usize]
            .viewer(instance)
            .expect("viewer exists");
        let missing = v.blocks_missing();
        assert!(
            missing <= 10,
            "viewer lost {missing} blocks; takeover failed"
        );
        assert!(
            v.blocks_received() >= 75,
            "viewer only got {} blocks",
            v.blocks_received()
        );
    }
}

#[test]
fn double_forwarding_preserves_schedule_across_failure() {
    // The §4.1.1 design argument: with single forwarding, the records in
    // flight to (and buffered on) a failed cub are lost outright, and
    // without the "go back … and recreate it" machinery the affected
    // streams starve permanently. With double forwarding another cub
    // always has them, no recovery pass needed.
    let run = |policy: ForwardingPolicy, recovery: bool| -> (u64, u64) {
        let mut cfg = quiet_config();
        cfg.forwarding = policy;
        cfg.gap_recovery = recovery;
        cfg.deadman_timeout = SimDuration::from_millis(1_500);
        let mut sys = TigerSystem::new(cfg);
        let file = sys.add_file(rate(), SimDuration::from_secs(60));
        for i in 0..8u64 {
            let client = sys.add_client();
            sys.request_start(SimTime::from_millis(100 + i * 500), client, file);
        }
        sys.fail_cub_at(SimTime::from_secs(15), CubId(1));
        sys.run_until(SimTime::from_secs(80));
        let report = sys.all_clients_report();
        let starved: u64 = sys
            .clients()
            .iter()
            .flat_map(|c| c.viewers())
            .map(|(_, v)| u64::from(v.tail_missing()))
            .sum();
        (report.blocks_missing, starved)
    };
    // Single forwarding without recovery: streams whose record died with
    // the cub starve for good.
    let (_, single_starved) = run(ForwardingPolicy::Single, false);
    assert!(
        single_starved > 50,
        "single forwarding without go-back recovery must starve streams; starved {single_starved}"
    );
    // Double forwarding never needs the recovery pass.
    let (double_missing, double_starved) = run(ForwardingPolicy::Double, false);
    assert_eq!(double_starved, 0, "double forwarding must not starve");
    assert!(
        double_missing <= 16,
        "double-forwarding losses stay in the window"
    );
}

#[test]
fn deterministic_runs_are_identical() {
    let run = || {
        let mut sys = TigerSystem::new(quiet_config());
        let file = sys.add_file(rate(), SimDuration::from_secs(30));
        for i in 0..6u64 {
            let client = sys.add_client();
            sys.request_start(SimTime::from_millis(100 + i * 700), client, file);
        }
        sys.run_until(SimTime::from_secs(50));
        let r = sys.all_clients_report();
        (
            r.blocks_received,
            r.blocks_missing,
            sys.metrics().loss.blocks_sent,
            sys.metrics()
                .start_latencies
                .iter()
                .map(|&(_, l)| (l * 1e9) as u64)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run(), "same seed must give identical runs");
}

#[test]
fn seeds_change_latency_details_not_correctness() {
    let run = |seed: u64| {
        let mut cfg = quiet_config();
        cfg.seed = seed;
        let mut sys = TigerSystem::new(cfg);
        let file = sys.add_file(rate(), SimDuration::from_secs(20));
        for i in 0..4u64 {
            let client = sys.add_client();
            sys.request_start(SimTime::from_millis(100 + i * 900), client, file);
        }
        sys.run_until(SimTime::from_secs(40));
        sys.all_clients_report()
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a.completed_viewers, 4);
    assert_eq!(b.completed_viewers, 4);
    assert_eq!(a.blocks_missing, 0);
    assert_eq!(b.blocks_missing, 0);
}

#[test]
fn control_traffic_is_bounded_per_cub() {
    let mut sys = TigerSystem::new(quiet_config());
    let file = sys.add_file(rate(), SimDuration::from_secs(120));
    for i in 0..20u64 {
        let client = sys.add_client();
        sys.request_start(SimTime::from_millis(100 + i * 200), client, file);
    }
    sys.run_until(SimTime::from_secs(30));
    // Settle, then measure a window.
    let t0 = sys.now();
    sys.sample_window(t0, CubId(0), None);
    sys.run_until(t0 + SimDuration::from_secs(20));
    let sample = sys.sample_window(t0 + SimDuration::from_secs(20), CubId(0), None);
    // 20 streams over 4 cubs: each cub forwards ~5 viewer states/s twice,
    // plus pings. Well under a few KB/s (the paper saw <21 KB/s at 602
    // streams over 14 cubs).
    assert!(
        sample.control_bytes_per_sec > 100.0,
        "implausibly low control traffic: {}",
        sample.control_bytes_per_sec
    );
    assert!(
        sample.control_bytes_per_sec < 10_000.0,
        "control traffic blew up: {} B/s",
        sample.control_bytes_per_sec
    );
    assert_eq!(sample.streams, 20);
}
