//! Online-recovery protocol tests: cub rejoin with mirror catch-up, the
//! monitoring-baseline reset, double failure during the hand-back window,
//! and live restriping (fault-free byte-equality against the offline
//! oracle, and resumption across a mid-restripe crash).

use tiger_core::{TigerConfig, TigerSystem};
use tiger_layout::{CubId, StripeConfig};
use tiger_sim::{Bandwidth, SimDuration, SimTime};
use tiger_trace::TraceEvent;

fn rate() -> Bandwidth {
    Bandwidth::from_mbit_per_sec(2)
}

/// An 8-cub system, blip-free for deterministic loss accounting.
fn eight_cubs() -> TigerConfig {
    let mut cfg = TigerConfig::small_test();
    cfg.stripe = StripeConfig::new(8, 1, 2);
    cfg.num_clients = 8;
    cfg.disk = cfg.disk.without_blips();
    cfg.deadman_timeout = SimDuration::from_millis(1_500);
    cfg
}

#[test]
fn rejoin_restores_service_and_converges() {
    // Crash a cub mid-playback, restart it, and check that (a) the rejoin
    // handshake runs (restart, hand-back grant, first re-accepted slot),
    // (b) streams survive with loss bounded by the detection window, and
    // (c) the rejoined cub is serving again — RejoinDone — within the
    // re-learning bound (its successor relays the states it had been
    // covering, so a forward interval or two suffices).
    let mut sys = TigerSystem::new(eight_cubs());
    sys.enable_trace(65_536);
    let file = sys.add_file(rate(), SimDuration::from_secs(100));
    let mut viewers = Vec::new();
    for i in 0..8u64 {
        let client = sys.add_client();
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
        ));
    }
    sys.fail_cub_at(SimTime::from_secs(10), CubId(2));
    sys.restart_cub_at(SimTime::from_secs(25), CubId(2));
    sys.run_until(SimTime::from_secs(120));

    let records = sys.tracer().records();
    let restart_at = records
        .iter()
        .find_map(|r| match r.ev {
            TraceEvent::CubRestart { cub: 2 } => Some(r.at),
            _ => None,
        })
        .expect("restart traced");
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::RejoinGrant { to: 2, .. })),
        "covering successor never opened a hand-back window"
    );
    let done_at = records
        .iter()
        .find_map(|r| match r.ev {
            TraceEvent::RejoinDone { cub: 2 } => Some(r.at),
            _ => None,
        })
        .expect("rejoined cub never re-accepted a slot");
    // Convergence bound: the successor relays covered states as they come
    // due, so the first re-accepted slot lands within the hand-back window
    // plus scheduling slack.
    let bound = sys.shared().cfg.min_vstate_lead
        + sys.shared().cfg.forward_interval.mul_u64(2)
        + SimDuration::from_secs(2);
    assert!(
        done_at.saturating_since(restart_at) <= bound,
        "rejoin took {:?}, bound {:?}",
        done_at.saturating_since(restart_at),
        bound
    );
    // No second failure declaration of cub 2 after its restart (fresh
    // monitoring baseline on both sides of the rejoin).
    assert!(
        !records.iter().any(
            |r| matches!(r.ev, TraceEvent::DeadmanDeclare { failed: 2, .. } if r.at > restart_at)
        ),
        "rejoined cub re-declared dead: baseline reset failed"
    );
    for (client, v) in &viewers {
        let p = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        assert_eq!(p.tail_missing(), 0, "stream starved across rejoin");
        assert!(
            p.blocks_missing() <= 8,
            "lost {} blocks; a single covered failure plus rejoin must stay \
             within the detection window",
            p.blocks_missing()
        );
    }
}

#[test]
fn no_block_served_twice_during_handback() {
    // While the successor hands slots back, both it and the rejoined cub
    // know about the same viewers. The mirror-set rule (serve only what
    // you own or act for) must keep them from both sending a block.
    let mut sys = TigerSystem::new(eight_cubs());
    let file = sys.add_file(rate(), SimDuration::from_secs(90));
    let mut viewers = Vec::new();
    for i in 0..8u64 {
        let client = sys.add_client();
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
        ));
    }
    sys.fail_cub_at(SimTime::from_secs(10), CubId(5));
    sys.restart_cub_at(SimTime::from_secs(20), CubId(5));
    sys.run_until(SimTime::from_secs(110));
    for (client, v) in &viewers {
        let p = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        assert_eq!(
            p.dup_blocks, 0,
            "duplicate delivery during hand-back window"
        );
    }
}

#[test]
fn double_failure_during_catchup_bounds_loss() {
    // The covering successor (cub 3, for cub 2's disks) dies moments after
    // the rejoin starts — in the middle of its hand-back window. The
    // rejoined cub has its disks and a partial view; the loss must stay
    // bounded by one detection window per failure plus the hand-back gap,
    // and streams must not starve.
    let mut sys = TigerSystem::new(eight_cubs());
    sys.enable_trace(65_536);
    let file = sys.add_file(rate(), SimDuration::from_secs(100));
    let mut viewers = Vec::new();
    for i in 0..8u64 {
        let client = sys.add_client();
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
        ));
    }
    sys.fail_cub_at(SimTime::from_secs(10), CubId(2));
    sys.restart_cub_at(SimTime::from_secs(20), CubId(2));
    // Mid-handback: the window is min_vstate_lead (2s in small_test) long.
    sys.fail_cub_at(SimTime::from_millis(20_400), CubId(3));
    sys.run_until(SimTime::from_secs(120));
    for (client, v) in &viewers {
        let p = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        assert_eq!(
            p.tail_missing(),
            0,
            "stream starved after partner died mid-handback"
        );
        // Two non-overlapping single failures, each covered by mirrors:
        // each costs at most the detection window (~2 blocks at 1 block/s)
        // plus hand-back re-learning slack.
        assert!(
            p.blocks_missing() <= 14,
            "lost {} blocks: catch-up state must survive the partner's death",
            p.blocks_missing()
        );
        assert_eq!(p.dup_blocks, 0, "duplicate delivery across double failure");
    }
}

/// Shared scaffolding for the live-restripe tests: a 6+2 system with two
/// files and six viewers, restriped to 8 cubs at `restripe_at`.
fn restripe_system() -> (TigerSystem, Vec<(u32, tiger_layout::ids::ViewerInstance)>) {
    let mut cfg = TigerConfig::small_test();
    cfg.stripe = StripeConfig::new(6, 1, 2);
    cfg.spare_cubs = 2;
    cfg.num_clients = 6;
    cfg.disk = cfg.disk.without_blips();
    cfg.deadman_timeout = SimDuration::from_millis(1_500);
    let mut sys = TigerSystem::new(cfg);
    let a = sys.add_file(rate(), SimDuration::from_secs(120));
    let b = sys.add_file(rate(), SimDuration::from_secs(120));
    let mut viewers = Vec::new();
    for i in 0..6u64 {
        let client = sys.add_client();
        let file = if i % 2 == 0 { a } else { b };
        viewers.push((
            client,
            sys.request_start(SimTime::from_millis(100 + i * 400), client, file),
        ));
    }
    (sys, viewers)
}

/// The offline oracle: the same content statically laid out on the target
/// geometry. Byte-equality of layout digests is the acceptance bar for
/// the live restriper.
fn oracle_digest() -> String {
    let (sys, _) = restripe_system();
    let (oracle, _plan) = sys.restripe_into(StripeConfig::new(8, 1, 2));
    oracle.layout_digest()
}

#[test]
fn fault_free_live_restripe_matches_static_oracle() {
    let (mut sys, viewers) = restripe_system();
    sys.enable_trace(65_536);
    sys.request_restripe(SimTime::from_secs(5), 2);
    sys.run_until(SimTime::from_secs(140));

    let records = sys.tracer().records();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::RestripeCutover { .. })),
        "restripe never cut over"
    );
    assert_eq!(
        sys.layout_digest(),
        oracle_digest(),
        "live restripe landed a different layout than the static plan"
    );
    // Streams ride across the cut-over: the old incarnation is fenced and
    // a renewed one resumes at the high-water mark, so at most the
    // in-flight window of blocks is disturbed per viewer.
    for (client, v) in &viewers {
        let old = sys.clients()[*client as usize]
            .viewer(v)
            .expect("viewer exists");
        let renewed = tiger_layout::ids::ViewerInstance {
            viewer: v.viewer,
            incarnation: v.incarnation + 1,
        };
        let newp = sys.clients()[*client as usize].viewer(&renewed);
        let high = newp
            .and_then(|p| p.high_water)
            .or(old.high_water)
            .unwrap_or(0);
        assert!(
            high >= 115,
            "stream stalled at block {high} across the cut-over"
        );
        let missing = old.blocks_missing() + newp.map_or(0, |p| p.blocks_missing());
        assert!(
            missing <= 8,
            "lost {missing} blocks across a fault-free restripe"
        );
    }
}

#[test]
fn restripe_resumes_across_mid_restripe_crash() {
    // Crash a source cub while its moves are in flight, restart it, and
    // check the plan drains to the same final layout — a crash leaves a
    // resumable plan, not a corrupt one.
    let (mut sys, _viewers) = restripe_system();
    sys.enable_trace(65_536);
    sys.request_restripe(SimTime::from_secs(5), 2);
    sys.fail_cub_at(SimTime::from_millis(5_300), CubId(1));
    sys.restart_cub_at(SimTime::from_secs(15), CubId(1));
    sys.run_until(SimTime::from_secs(160));

    let records = sys.tracer().records();
    let cutover_at = records
        .iter()
        .find_map(|r| match r.ev {
            TraceEvent::RestripeCutover { .. } => Some(r.at),
            _ => None,
        })
        .expect("restripe never completed after the crash");
    assert!(
        cutover_at > SimTime::from_secs(15),
        "cut-over cannot precede the source cub's restart"
    );
    assert_eq!(
        sys.layout_digest(),
        oracle_digest(),
        "crash + resume corrupted the final layout"
    );
}

/// The shrink oracle: the same content statically laid out on the
/// 5-cub target geometry (one member drained and fenced).
fn shrink_oracle_digest() -> String {
    let (sys, _) = restripe_system();
    let (oracle, _plan) = sys.restripe_into(StripeConfig::new(5, 1, 2));
    oracle.layout_digest()
}

#[test]
fn fault_free_live_shrink_matches_static_oracle() {
    let (mut sys, _viewers) = restripe_system();
    sys.enable_trace(65_536);
    sys.request_restripe_remove(SimTime::from_secs(5), 1);
    sys.run_until(SimTime::from_secs(160));

    let records = sys.tracer().records();
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::ShrinkDrain { cub: 5, .. })),
        "departing cub never finished draining"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::ShrinkFence { cub: 5 })),
        "departing cub never fenced at cut-over"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::RestripeCutover { .. })),
        "shrink never cut over"
    );
    assert_eq!(
        sys.layout_digest(),
        shrink_oracle_digest(),
        "live shrink landed a different layout than the static plan"
    );
}

#[test]
fn shrink_resumes_across_mid_drain_crash() {
    // A surviving destination cub dies while the departing member's
    // primaries are draining onto it, then restarts: the moves targeting
    // it park, resume after the rejoin, and the plan still drains to the
    // oracle's exact layout.
    let (mut sys, _viewers) = restripe_system();
    sys.enable_trace(65_536);
    sys.request_restripe_remove(SimTime::from_secs(5), 1);
    sys.fail_cub_at(SimTime::from_millis(5_300), CubId(1));
    sys.restart_cub_at(SimTime::from_secs(15), CubId(1));
    sys.run_until(SimTime::from_secs(180));

    let records = sys.tracer().records();
    let cutover_at = records
        .iter()
        .find_map(|r| match r.ev {
            TraceEvent::RestripeCutover { .. } => Some(r.at),
            _ => None,
        })
        .expect("shrink never completed after the crash");
    assert!(
        cutover_at > SimTime::from_secs(15),
        "cut-over cannot precede the destination cub's restart"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r.ev, TraceEvent::ShrinkFence { cub: 5 })),
        "departing cub never fenced after the crash"
    );
    assert_eq!(
        sys.layout_digest(),
        shrink_oracle_digest(),
        "crash + resume corrupted the shrink layout"
    );
}

#[test]
fn restripe_noop_when_no_moves_needed() {
    // Adding zero cubs plans zero moves and cuts over immediately without
    // touching the layout or the viewers.
    let (mut sys, _) = restripe_system();
    let before = sys.layout_digest();
    sys.request_restripe(SimTime::from_secs(5), 0);
    sys.run_until(SimTime::from_secs(30));
    assert_eq!(sys.layout_digest(), before, "no-op restripe moved blocks");
}
