//! Live restriping: executing a [`RestripePlan`] incrementally inside the
//! event loop, as background disk and network work behind the stream
//! schedule (§2.2: "the time to restripe a system does not depend on the
//! size of the system" — per-disk move volume, not system size, bounds it;
//! §6.4 gives the bandwidth estimate the chaos invariants check against).
//!
//! Each block move runs a three-stage pipeline: a paced background read on
//! its source disk, a network transfer to the destination machine, and an
//! index/space commit on the destination disk. Background reads are
//! admission-gated — a source disk is touched only when it is idle (no
//! foreground stream read outstanding) and its pacing rest has elapsed, so
//! the restripe steals only slack bandwidth. Moves whose source or
//! destination is down simply re-queue: a crash mid-restripe leaves a
//! resumable plan, and a later [`crate::event::Event::RestartCub`] revives
//! the disks and lets the pump pick the moves back up.

use std::collections::{HashMap, VecDeque};

use tiger_disk::{DiskError, DiskRequest, RequestKind};
use tiger_layout::{DiskId, RestripePlan};
use tiger_sim::{SimDuration, SimTime};
use tiger_trace::{TraceEvent, CTRL};

use crate::cub::Cub;
use crate::event::Event;
use crate::system::Shared;

/// Retry delay after a transient read error on a source disk.
const TRANSIENT_RETRY: SimDuration = SimDuration::from_millis(100);

/// Where one block move is in its pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MoveState {
    /// Waiting for its source disk to be idle and eligible.
    Queued,
    /// Background read outstanding on the source disk.
    Reading,
    /// In flight on the network toward the destination machine.
    Transferring,
    /// Committed into the destination disk's index and space map.
    Arrived,
}

/// An in-progress live restripe: the plan plus per-move pipeline state.
#[derive(Debug)]
pub struct LiveRestripe {
    plan: RestripePlan,
    state: Vec<MoveState>,
    /// Moves not yet [`MoveState::Arrived`].
    pending: usize,
    /// Per-source-disk FIFO of queued move indices (old-geometry disk ids).
    disk_queue: Vec<VecDeque<u32>>,
    /// Earliest next background issue per source disk: each read is
    /// followed by a rest at least as long as the read itself took, so
    /// background work never claims more than half a disk's head time.
    next_eligible: Vec<SimTime>,
    /// A stall was already traced for the current starvation episode.
    stalled: bool,
    /// Shrink drain progress per removed cub: `(remaining, total)` moves
    /// out of that cub's disks. A `ShrinkDrain` trace records each cub's
    /// drain completing — its primaries now all live on survivors, and
    /// only the cut-over fence remains.
    drain: HashMap<u32, (u32, u32)>,
}

impl LiveRestripe {
    /// Sets up the pipeline over `plan`'s moves.
    pub(crate) fn new(plan: RestripePlan, now: SimTime) -> Self {
        let old = plan.old_config();
        let new = plan.new_config();
        let num_disks = (old.num_cubs * old.disks_per_cub) as usize;
        let mut disk_queue = vec![VecDeque::new(); num_disks];
        let mut drain: HashMap<u32, (u32, u32)> = HashMap::new();
        for (i, mv) in plan.moves().iter().enumerate() {
            disk_queue[mv.from.index()].push_back(i as u32);
            // A shrink drains every block homed on the removed trailing
            // cubs; count those moves per cub so the drain's completion
            // is observable before the cut-over fence.
            let src = old.cub_of(mv.from);
            if src.raw() >= new.num_cubs {
                let e = drain.entry(src.raw()).or_insert((0, 0));
                e.0 += 1;
                e.1 += 1;
            }
        }
        let pending = plan.moves().len();
        LiveRestripe {
            state: vec![MoveState::Queued; pending],
            pending,
            disk_queue,
            next_eligible: vec![now; num_disks],
            stalled: false,
            drain,
            plan,
        }
    }

    /// Moves not yet landed; the cut-over runs when this reaches zero.
    /// (The §6.4 duration invariant measures elapsed time between the
    /// `RestripeStart` and `RestripeCutover` trace events.)
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Surrenders the plan at cut-over.
    pub(crate) fn into_plan(self) -> RestripePlan {
        self.plan
    }

    /// The periodic pump: issue one background read per idle, eligible
    /// source disk. Disks whose machine or drive is down are skipped —
    /// their moves wait for a restart.
    pub(crate) fn pump(&mut self, sh: &mut Shared, cubs: &mut [Cub], now: SimTime) {
        let old = self.plan.old_config();
        let mut issued = false;
        // A disk held back only by pacing (or a busy head) is idle time the
        // admission gate bought, not a stall.
        let mut pacing_wait = false;
        for d in 0..self.disk_queue.len() {
            if self.disk_queue[d].is_empty() {
                continue;
            }
            let disk_id = DiskId(d as u32);
            let src_cub = old.cub_of(disk_id);
            let local = old.local_index_of(disk_id) as usize;
            let cub = &mut cubs[src_cub.index()];
            if cub.failed || cub.disks()[local].is_failed() {
                continue;
            }
            if cub.disks()[local].outstanding() > 0 || now < self.next_eligible[d] {
                pacing_wait = true;
                continue;
            }
            let idx = *self.disk_queue[d].front().expect("queue non-empty");
            let mv = self.plan.moves()[idx as usize];
            let Some(extent) = cub.index().lookup_primary(mv.from, mv.file, mv.block) else {
                // Unreachable: source entries are only removed at cut-over.
                debug_assert!(false, "restripe source extent vanished");
                self.disk_queue[d].pop_front();
                continue;
            };
            let req = DiskRequest {
                offset: extent.offset(),
                len: extent.length(),
                // Background class: restripe reads ride the mirror lane so
                // foreground primary-stream accounting stays clean.
                kind: RequestKind::Mirror,
            };
            match cub.disks_mut()[local].submit(now, req) {
                Ok(done) => {
                    self.disk_queue[d].pop_front();
                    self.state[idx as usize] = MoveState::Reading;
                    // Pacing: rest at least as long as the read ran.
                    self.next_eligible[d] = done + done.saturating_since(now);
                    sh.queue.schedule(done, Event::RestripeRead { idx });
                    issued = true;
                }
                Err(DiskError::Transient) => {
                    self.next_eligible[d] = now + TRANSIENT_RETRY;
                    pacing_wait = true;
                }
                Err(_) => {} // Disk died under us; wait for a restart.
            }
        }
        let in_flight = self
            .state
            .iter()
            .any(|s| matches!(s, MoveState::Reading | MoveState::Transferring));
        if issued || in_flight || pacing_wait {
            self.stalled = false;
        } else if self.pending > 0 && !self.stalled {
            // Every remaining move's source is down: the plan is parked
            // until a restart revives a source disk. Trace it once per
            // episode so timelines show the starvation window.
            self.stalled = true;
            sh.tracer.record(
                now,
                CTRL,
                TraceEvent::RestripeStall {
                    pending: self.pending as u32,
                },
            );
        }
    }

    /// A background read finished on its source disk: hand the block to
    /// the network.
    pub(crate) fn on_read_done(
        &mut self,
        sh: &mut Shared,
        cubs: &mut [Cub],
        now: SimTime,
        idx: u32,
    ) {
        if self.state[idx as usize] != MoveState::Reading {
            return;
        }
        let mv = self.plan.moves()[idx as usize];
        let old = self.plan.old_config();
        let new = self.plan.new_config();
        let src_cub = old.cub_of(mv.from);
        let local = old.local_index_of(mv.from) as usize;
        let cub = &mut cubs[src_cub.index()];
        if cub.failed || cub.disks()[local].is_failed() {
            // The machine (or drive) died with the read in flight: the
            // data never surfaced. Re-queue for after a restart. (A failed
            // disk already zeroed its outstanding count.)
            self.requeue(mv.from, idx);
            return;
        }
        cub.disks_mut()[local].complete(now);
        let dst_cub = new.cub_of(mv.to);
        let src_node = sh.cub_node(src_cub);
        let dst_node = sh.cub_node(dst_cub);
        let at = sh.net.send_data(now, src_node, dst_node);
        sh.trace_net_injections(now);
        match at {
            Some(at) => {
                self.state[idx as usize] = MoveState::Transferring;
                sh.queue.schedule(at, Event::RestripeArrive { idx });
            }
            // Dropped or the destination is down: the read is repeated.
            None => self.requeue(mv.from, idx),
        }
    }

    /// A block landed on its destination machine: commit it into the new
    /// disk's space map and index.
    pub(crate) fn on_arrive(&mut self, sh: &mut Shared, cubs: &mut [Cub], now: SimTime, idx: u32) {
        if self.state[idx as usize] != MoveState::Transferring {
            return;
        }
        let mv = self.plan.moves()[idx as usize];
        let old = self.plan.old_config();
        let new = self.plan.new_config();
        let dst_cub = new.cub_of(mv.to);
        let local = new.local_index_of(mv.to);
        let cub = &mut cubs[dst_cub.index()];
        if cub.disks()[local as usize].is_failed() {
            // Destination drive died while the block was in flight.
            self.requeue(mv.from, idx);
            return;
        }
        // Spare destinations are marked `failed` until cut-over (they are
        // not ring members), but their disks are powered and commit fine.
        cub.load_primary(mv.to, local, mv.file, mv.block, mv.size);
        self.state[idx as usize] = MoveState::Arrived;
        self.pending -= 1;
        let src = old.cub_of(mv.from);
        if let Some(e) = self.drain.get_mut(&src.raw()) {
            e.0 -= 1;
            if e.0 == 0 {
                sh.tracer.record(
                    now,
                    CTRL,
                    TraceEvent::ShrinkDrain {
                        cub: src.raw(),
                        moved: e.1,
                    },
                );
            }
        }
    }

    fn requeue(&mut self, from: DiskId, idx: u32) {
        self.state[idx as usize] = MoveState::Queued;
        self.disk_queue[from.index()].push_back(idx);
    }
}
