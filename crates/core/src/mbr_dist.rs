//! The multiple-bitrate network schedule as a *distributed* system
//! (paper §4.2), running over the event queue and the switched network.
//!
//! [`crate::mbr::MbrCoordinator`] models the two-phase insertion as direct
//! function calls; this module runs the real message protocol:
//!
//! 1. the originating cub checks its local view, tentatively inserts,
//!    **starts the first-block disk read speculatively**, and sends an
//!    `MbrReserve` to its successor over the (latency-bearing, FIFO)
//!    network;
//! 2. the successor checks *its* view — which may hold reservations the
//!    originator cannot see — records a reservation, and replies;
//! 3. if the positive reply arrives before the deadline (the scheduling
//!    lead budget), the originator commits and floods a commit notice
//!    around the ring so every view converges; the successor's reservation
//!    becomes a real entry. Otherwise the originator aborts, releases the
//!    reservation, and the disk read is wasted.
//!
//! An omniscient observer applies every commit to a reference schedule and
//! checks that the distributed views never overcommit the NIC anywhere —
//! the coherent-hallucination condition for the 2-D schedule.

use std::collections::HashMap;

use tiger_layout::ids::ViewerInstance;
use tiger_layout::ViewerId;
#[cfg(test)]
use tiger_net::LatencyModel;
use tiger_net::{NetNode, Network};
use tiger_sched::{NetEntryId, NetworkSchedule};
use tiger_sim::{Bandwidth, EventQueue, RngTree, SimDuration, SimRng, SimTime};

use crate::mbr::MbrConfig;

/// Messages of the distributed two-phase insertion protocol.
#[derive(Clone, Debug)]
enum MbrMsg {
    Reserve {
        reservation: u64,
        instance: ViewerInstance,
        start_nanos: u64,
        rate_bps: u64,
    },
    ReserveReply {
        reservation: u64,
        ok: bool,
    },
    Commit {
        instance: ViewerInstance,
        start_nanos: u64,
        rate_bps: u64,
        hops_left: u32,
    },
    Release {
        reservation: u64,
    },
    Remove {
        instance: ViewerInstance,
        hops_left: u32,
    },
}

const MSG_BYTES: u64 = 64;

/// Events of the MBR simulation.
#[derive(Clone, Debug)]
enum MbrEvent {
    Deliver { dst: NetNode, msg: MbrMsg },
    ReadDone { origin: u32, reservation: u64 },
    Deadline { origin: u32, reservation: u64 },
    Request { origin: u32, rate_bps: u64 },
}

/// Outcome statistics of a distributed MBR run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MbrDistStats {
    /// Insertions committed.
    pub committed: u64,
    /// Insertions aborted (successor refusal or deadline miss).
    pub aborted: u64,
    /// Insertions rejected by the local view alone.
    pub rejected_local: u64,
    /// Commits whose reserve round trip finished before the speculative
    /// disk read (fully hidden latency).
    pub hidden_confirms: u64,
    /// Capacity violations found by the omniscient observer (must be 0).
    pub violations: u64,
}

/// One in-flight two-phase insertion at its originating cub.
#[derive(Clone, Debug)]
struct Pending {
    instance: ViewerInstance,
    entry: NetEntryId,
    start: SimDuration,
    rate: Bandwidth,
    read_done: bool,
    reply: Option<bool>,
    rtt_done_at: Option<SimTime>,
    read_done_at: Option<SimTime>,
    deadline: SimTime,
    resolved: bool,
}

/// Per-cub state.
struct MbrCub {
    view: NetworkSchedule,
    /// Reservations held on behalf of predecessors: reservation id →
    /// (entry, instance).
    held: HashMap<u64, (NetEntryId, ViewerInstance)>,
    pending: HashMap<u64, Pending>,
}

/// The distributed multiple-bitrate schedule manager.
pub struct MbrSystem {
    cfg: MbrConfig,
    queue: EventQueue<MbrEvent>,
    net: Network,
    cubs: Vec<MbrCub>,
    /// The omniscient reference schedule: all committed entries.
    reference: NetworkSchedule,
    stats: MbrDistStats,
    next_instance: u64,
    next_reservation: u64,
    rng: SimRng,
    /// The insertion deadline budget (scheduling lead).
    deadline: SimDuration,
}

impl MbrSystem {
    /// Builds an idle ring.
    pub fn new(cfg: MbrConfig, deadline: SimDuration) -> Self {
        let rng_tree = RngTree::new(cfg.seed);
        let make_sched = || {
            NetworkSchedule::new(
                cfg.num_cubs,
                cfg.block_play_time,
                cfg.nic_capacity,
                cfg.quantum,
            )
        };
        MbrSystem {
            queue: EventQueue::new(),
            net: Network::new(
                cfg.num_cubs,
                cfg.nic_capacity,
                cfg.latency,
                rng_tree.fork("mbr-net", 0),
            ),
            cubs: (0..cfg.num_cubs)
                .map(|_| MbrCub {
                    view: make_sched(),
                    held: HashMap::new(),
                    pending: HashMap::new(),
                })
                .collect(),
            reference: make_sched(),
            stats: MbrDistStats::default(),
            next_instance: 0,
            next_reservation: 0,
            rng: rng_tree.fork("mbr-sys", 0),
            deadline,
            cfg,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MbrDistStats {
        self.stats
    }

    /// The view of `cub` (for convergence checks).
    pub fn view(&self, cub: u32) -> &NetworkSchedule {
        &self.cubs[cub as usize].view
    }

    /// Total control bytes sent by `cub`.
    pub fn control_bytes(&self, cub: u32) -> u64 {
        self.net.total_control_bytes(NetNode(cub))
    }

    /// Schedules an insertion request at `at` from `origin`.
    pub fn request_insert(&mut self, at: SimTime, origin: u32, rate: Bandwidth) {
        self.queue.schedule(
            at,
            MbrEvent::Request {
                origin,
                rate_bps: rate.bits_per_sec(),
            },
        );
    }

    /// Runs until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some((now, ev)) = self.queue.pop_until(horizon) {
            self.dispatch(now, ev);
        }
    }

    fn send(&mut self, now: SimTime, src: u32, dst: u32, msg: MbrMsg) {
        if let Some(at) = self
            .net
            .send_control(now, NetNode(src), NetNode(dst), MSG_BYTES)
        {
            self.queue.schedule(
                at,
                MbrEvent::Deliver {
                    dst: NetNode(dst),
                    msg,
                },
            );
        }
    }

    fn succ(&self, cub: u32) -> u32 {
        (cub + 1) % self.cfg.num_cubs
    }

    /// The reservation-expiry backstop: a tentative entry that has not
    /// been committed or released this long after it was made is assumed
    /// leaked (its originator died or the release was lost) and swept, so
    /// it cannot pin NIC capacity forever. Far beyond any legitimate
    /// round trip, so fault-free runs never trigger it.
    fn reservation_backstop(&self) -> SimDuration {
        self.deadline.mul_u64(4)
    }

    /// Sweeps expired reservations out of every view (and out of the
    /// successor-side `held` maps) before handling an event.
    fn sweep_expired(&mut self, now: SimTime) {
        for cub in &mut self.cubs {
            if cub.view.expire_reservations(now) > 0 {
                let MbrCub { view, held, .. } = cub;
                held.retain(|_, (entry, _)| view.contains_entry(*entry));
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: MbrEvent) {
        self.sweep_expired(now);
        match ev {
            MbrEvent::Request { origin, rate_bps } => {
                self.on_request(now, origin, Bandwidth::from_bits_per_sec(rate_bps));
            }
            MbrEvent::ReadDone {
                origin,
                reservation,
            } => {
                if let Some(p) = self.cubs[origin as usize].pending.get_mut(&reservation) {
                    p.read_done = true;
                    p.read_done_at = Some(now);
                }
                self.try_resolve(now, origin, reservation);
            }
            MbrEvent::Deadline {
                origin,
                reservation,
            } => {
                self.on_deadline(now, origin, reservation);
            }
            MbrEvent::Deliver { dst, msg } => self.on_message(now, dst.raw(), msg),
        }
    }

    /// Cub `cub`'s position on the network-schedule ring at `t` (pointers
    /// are one block play time apart, as on the disk schedule).
    fn ring_position(&self, cub: u32, t: SimTime) -> SimDuration {
        let l = self.cubs[cub as usize].view.len_duration().as_nanos();
        let lag =
            (self.cfg.block_play_time.as_nanos() as u128 * u128::from(cub) % u128::from(l)) as u64;
        SimDuration::from_nanos(((t.as_nanos() % l) + l - lag) % l)
    }

    fn on_request(&mut self, now: SimTime, origin: u32, rate: Bandwidth) {
        let instance = ViewerInstance {
            viewer: ViewerId(self.next_instance),
            incarnation: 0,
        };
        self.next_instance += 1;
        // Phase 0: "it first checks its local copy of the schedule to see
        // if it can rule out the insertion". The candidate start positions
        // are pinned to where this cub's pointer will be when the stream
        // must begin — this is what makes consulting only the *one*
        // succeeding cub sufficient: entries of cubs two or more apart can
        // never overlap, and adjacent cubs' conflicts are caught by the
        // successor's reservation check.
        let l = self.cubs[origin as usize].view.len_duration();
        let step = self.cfg.quantum.unwrap_or(SimDuration::from_millis(50));
        let base = self.ring_position(origin, now + self.deadline);
        let mut candidate = {
            // Round up to the grid, wrapping at the ring end.
            let b = base.as_nanos();
            let q = step.as_nanos();
            SimDuration::from_nanos(b.div_ceil(q) * q % l.as_nanos())
        };
        let mut start = None;
        let mut offset = SimDuration::ZERO;
        while offset < self.cfg.block_play_time {
            if self.cubs[origin as usize].view.fits(candidate, rate) {
                start = Some(candidate);
                break;
            }
            candidate =
                SimDuration::from_nanos((candidate.as_nanos() + step.as_nanos()) % l.as_nanos());
            offset += step;
        }
        let Some(start) = start else {
            self.stats.rejected_local += 1;
            return;
        };
        // Phase 1: tentative insert + speculative read + reserve request.
        // The expiry is pure defense in depth — the deadline event always
        // resolves the attempt long before the backstop.
        let backstop = now + self.reservation_backstop();
        let entry = self.cubs[origin as usize]
            .view
            .insert_with_expiry(instance, start, rate, true, Some(backstop))
            .expect("admissible start fits the local view");
        let reservation = self.next_reservation;
        self.next_reservation += 1;
        let read_time = SimDuration::from_nanos(
            (self.cfg.first_read.as_nanos() as f64 * self.rng.gen_range(0.7..1.3)) as u64,
        );
        self.queue.schedule(
            now + read_time,
            MbrEvent::ReadDone {
                origin,
                reservation,
            },
        );
        self.queue.schedule(
            now + self.deadline,
            MbrEvent::Deadline {
                origin,
                reservation,
            },
        );
        self.cubs[origin as usize].pending.insert(
            reservation,
            Pending {
                instance,
                entry,
                start,
                rate,
                read_done: false,
                reply: None,
                rtt_done_at: None,
                read_done_at: None,
                deadline: now + self.deadline,
                resolved: false,
            },
        );
        let succ = self.succ(origin);
        self.send(
            now,
            origin,
            succ,
            MbrMsg::Reserve {
                reservation,
                instance,
                start_nanos: start.as_nanos(),
                rate_bps: rate.bits_per_sec(),
            },
        );
    }

    fn on_message(&mut self, now: SimTime, me: u32, msg: MbrMsg) {
        match msg {
            MbrMsg::Reserve {
                reservation,
                instance,
                start_nanos,
                rate_bps,
            } => {
                let start = SimDuration::from_nanos(start_nanos);
                let rate = Bandwidth::from_bits_per_sec(rate_bps);
                // If the originator dies before committing or releasing,
                // the expiry backstop reclaims the reservation.
                let backstop = now + self.reservation_backstop();
                let cub = &mut self.cubs[me as usize];
                let ok = cub.view.fits(start, rate);
                if ok {
                    let entry = cub
                        .view
                        .insert_with_expiry(instance, start, rate, true, Some(backstop))
                        .expect("fits just checked");
                    cub.held.insert(reservation, (entry, instance));
                }
                // Reply to the predecessor (the originator).
                let pred = (me + self.cfg.num_cubs - 1) % self.cfg.num_cubs;
                self.send(now, me, pred, MbrMsg::ReserveReply { reservation, ok });
            }
            MbrMsg::ReserveReply { reservation, ok } => {
                if let Some(p) = self.cubs[me as usize].pending.get_mut(&reservation) {
                    p.reply = Some(ok);
                    p.rtt_done_at = Some(now);
                }
                self.try_resolve(now, me, reservation);
            }
            MbrMsg::Commit {
                instance,
                start_nanos,
                rate_bps,
                hops_left,
            } => {
                let start = SimDuration::from_nanos(start_nanos);
                let rate = Bandwidth::from_bits_per_sec(rate_bps);
                let cub = &mut self.cubs[me as usize];
                // The successor replaces its reservation with a real entry;
                // other cubs learn of the commit and add it.
                let held = cub
                    .held
                    .iter()
                    .find(|(_, (_, inst))| *inst == instance)
                    .map(|(&r, &(entry, _))| (r, entry));
                match held {
                    Some((r, entry)) => {
                        // A commit losing the race against the expiry
                        // backstop finds its reservation gone; fall back
                        // to inserting the committed entry directly.
                        if cub.view.commit(entry).is_err() {
                            let _ = cub.view.insert(instance, start, rate, false);
                        }
                        cub.held.remove(&r);
                    }
                    None if !cub.view.has_instance(instance) => {
                        // Views are kept consistent by commit flooding, so
                        // a committed entry always fits here too.
                        let _ = cub.view.insert(instance, start, rate, false);
                    }
                    None => {} // The flood lapped back to a cub that knows.
                }
                if hops_left > 0 {
                    let succ = self.succ(me);
                    self.send(
                        now,
                        me,
                        succ,
                        MbrMsg::Commit {
                            instance,
                            start_nanos,
                            rate_bps,
                            hops_left: hops_left - 1,
                        },
                    );
                }
            }
            MbrMsg::Release { reservation } => {
                let cub = &mut self.cubs[me as usize];
                if let Some((entry, _)) = cub.held.remove(&reservation) {
                    let _ = cub.view.abort(entry);
                }
            }
            MbrMsg::Remove {
                instance,
                hops_left,
            } => {
                self.cubs[me as usize].view.remove_instance(instance);
                if hops_left > 0 {
                    let succ = self.succ(me);
                    self.send(
                        now,
                        me,
                        succ,
                        MbrMsg::Remove {
                            instance,
                            hops_left: hops_left - 1,
                        },
                    );
                }
            }
        }
    }

    /// Commits or aborts when both the read and the reply have resolved.
    fn try_resolve(&mut self, now: SimTime, origin: u32, reservation: u64) {
        let Some(p) = self.cubs[origin as usize].pending.get(&reservation) else {
            return;
        };
        if p.resolved || p.reply.is_none() || !p.read_done {
            return;
        }
        let p = p.clone();
        let entry = self.cubs[origin as usize]
            .pending
            .get_mut(&reservation)
            .expect("just read");
        entry.resolved = true;
        if p.reply == Some(true) && now <= p.deadline {
            self.cubs[origin as usize]
                .view
                .commit(p.entry)
                .expect("tentative entry exists");
            self.stats.committed += 1;
            if let (Some(rtt), Some(read)) = (p.rtt_done_at, p.read_done_at) {
                if rtt <= read {
                    self.stats.hidden_confirms += 1;
                }
            }
            // Omniscient reference: committed entries must always fit.
            if self
                .reference
                .insert(p.instance, p.start, p.rate, false)
                .is_err()
            {
                self.stats.violations += 1;
            }
            // Flood the commit around the ring (everyone's view converges).
            let succ = self.succ(origin);
            self.send(
                now,
                origin,
                succ,
                MbrMsg::Commit {
                    instance: p.instance,
                    start_nanos: p.start.as_nanos(),
                    rate_bps: p.rate.bits_per_sec(),
                    hops_left: self.cfg.num_cubs - 1,
                },
            );
            self.cubs[origin as usize].pending.remove(&reservation);
        } else {
            self.abort(now, origin, reservation);
        }
    }

    fn on_deadline(&mut self, now: SimTime, origin: u32, reservation: u64) {
        let Some(p) = self.cubs[origin as usize].pending.get(&reservation) else {
            return;
        };
        if p.resolved {
            return;
        }
        // "If a cub … doesn't receive a response from the succeeding cub in
        // time, it will abort the tentative schedule insertion and stop the
        // disk I/O."
        self.abort(now, origin, reservation);
    }

    fn abort(&mut self, now: SimTime, origin: u32, reservation: u64) {
        let Some(p) = self.cubs[origin as usize].pending.remove(&reservation) else {
            return;
        };
        let _ = self.cubs[origin as usize].view.abort(p.entry);
        self.stats.aborted += 1;
        let succ = self.succ(origin);
        self.send(now, origin, succ, MbrMsg::Release { reservation });
    }

    /// Severs `cub` from the network: every message to or from it is
    /// dropped from now on. Used to exercise the reservation-expiry
    /// backstop — a dead originator can no longer release what it
    /// reserved.
    pub fn fail_cub_link(&mut self, cub: u32) {
        self.net.fail_node(NetNode(cub));
    }

    /// Removes a committed instance from every view (deschedule).
    pub fn request_remove(&mut self, at: SimTime, origin: u32, instance: ViewerInstance) {
        self.reference.remove_instance(instance);
        self.queue.schedule(
            at,
            MbrEvent::Deliver {
                dst: NetNode(origin),
                msg: MbrMsg::Remove {
                    instance,
                    hops_left: self.cfg.num_cubs,
                },
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> MbrSystem {
        MbrSystem::new(MbrConfig::default_ring(), SimDuration::from_millis(700))
    }

    fn mbit(n: u64) -> Bandwidth {
        Bandwidth::from_mbit_per_sec(n)
    }

    #[test]
    fn insertions_commit_over_the_wire() {
        let mut sys = ring();
        for i in 0..40u64 {
            sys.request_insert(SimTime::from_millis(i * 100), (i % 14) as u32, mbit(2));
        }
        sys.run_until(SimTime::from_secs(20));
        let stats = sys.stats();
        assert_eq!(stats.committed, 40, "{stats:?}");
        assert_eq!(stats.violations, 0);
        assert_eq!(stats.aborted, 0);
        // Views converge: every cub sees all 40 entries.
        for cub in 0..14 {
            assert_eq!(sys.view(cub).len(), 40, "cub {cub} view incomplete");
        }
    }

    #[test]
    fn lan_latency_is_hidden_behind_the_read() {
        let mut sys = ring();
        for i in 0..60u64 {
            sys.request_insert(SimTime::from_millis(i * 200), (i % 14) as u32, mbit(2));
        }
        sys.run_until(SimTime::from_secs(30));
        let stats = sys.stats();
        assert_eq!(stats.committed, 60);
        // ~60 ms read vs 4-20 ms round trip: almost always hidden (§4.2).
        assert!(
            stats.hidden_confirms as f64 / stats.committed as f64 > 0.9,
            "{stats:?}"
        );
    }

    #[test]
    fn slow_network_aborts_and_releases() {
        let mut cfg = MbrConfig::default_ring();
        cfg.latency = LatencyModel::fixed(SimDuration::from_millis(500));
        let mut sys = MbrSystem::new(cfg, SimDuration::from_millis(700));
        sys.request_insert(SimTime::ZERO, 0, mbit(2));
        sys.run_until(SimTime::from_secs(5));
        let stats = sys.stats();
        assert_eq!(stats.aborted, 1, "{stats:?}");
        assert_eq!(stats.committed, 0);
        // Both the tentative entry and the reservation were released.
        assert_eq!(sys.view(0).len(), 0);
        assert_eq!(sys.view(1).len(), 0);
    }

    #[test]
    fn concurrent_insertions_never_overcommit() {
        // A storm of concurrent insertions from every cub against a small
        // NIC: successor reservations must serialize what local views
        // cannot see; the reference schedule (checked on every commit)
        // catches any overcommit.
        let mut cfg = MbrConfig::default_ring();
        cfg.nic_capacity = mbit(8);
        let mut sys = MbrSystem::new(cfg, SimDuration::from_millis(700));
        for i in 0..200u64 {
            sys.request_insert(SimTime::from_millis(i * 7), (i % 14) as u32, mbit(2));
        }
        sys.run_until(SimTime::from_secs(60));
        let stats = sys.stats();
        assert_eq!(stats.violations, 0, "{stats:?}");
        // 8 Mbit/s × 14 s ring / (2 Mbit/s × 1 s) = 56 streams max.
        assert!(stats.committed <= 56, "{stats:?}");
        assert!(stats.committed >= 40, "storm should mostly fill: {stats:?}");
        assert_eq!(stats.committed + stats.aborted + stats.rejected_local, 200);
    }

    #[test]
    fn leaked_reservation_expires_instead_of_pinning_capacity() {
        // The originator reserves at its successor, then drops off the
        // network before it can commit or release. Without the expiry
        // backstop the successor's reservation would pin 2 Mbit/s of NIC
        // capacity forever.
        let mut cfg = MbrConfig::default_ring();
        cfg.latency = LatencyModel::fixed(SimDuration::from_millis(100));
        let mut sys = MbrSystem::new(cfg, SimDuration::from_millis(700));
        sys.request_insert(SimTime::ZERO, 0, mbit(2));
        // Let the request dispatch (the reserve message is now in flight),
        // then sever the originator: the reply and any release are lost.
        sys.run_until(SimTime::from_millis(1));
        sys.fail_cub_link(0);
        sys.run_until(SimTime::from_secs(2));
        let inst = ViewerInstance {
            viewer: ViewerId(0),
            incarnation: 0,
        };
        // The successor holds the leaked reservation (reserve arrived at
        // 100 ms; the originator's own deadline abort at 700 ms could not
        // reach it).
        assert!(sys.view(1).has_instance(inst), "reservation was made");
        assert_eq!(sys.stats().aborted, 1);
        // Any later event past the backstop (4 × 700 ms after the reserve)
        // sweeps it; an unrelated insertion provides the tick.
        sys.request_insert(SimTime::from_secs(4), 7, mbit(2));
        sys.run_until(SimTime::from_secs(6));
        assert!(
            !sys.view(1).has_instance(inst),
            "leaked reservation should have expired"
        );
        assert_eq!(sys.stats().committed, 1, "later insertion unaffected");
        assert_eq!(sys.stats().violations, 0);
    }

    #[test]
    fn removal_propagates_to_every_view() {
        let mut sys = ring();
        sys.request_insert(SimTime::ZERO, 0, mbit(4));
        sys.run_until(SimTime::from_secs(2));
        assert_eq!(sys.stats().committed, 1);
        let inst = ViewerInstance {
            viewer: ViewerId(0),
            incarnation: 0,
        };
        sys.request_remove(SimTime::from_secs(3), 0, inst);
        sys.run_until(SimTime::from_secs(6));
        for cub in 0..14 {
            assert_eq!(sys.view(cub).len(), 0, "cub {cub} kept a removed entry");
        }
    }
}
