//! Control-plane messages — re-exported from the sans-io core.
//!
//! The message vocabulary moved to `tiger_proto::msg` when the protocol
//! was split out of the DES driver: the same `Message` enum now travels
//! the simulated network by value here and a real socket as text lines
//! in `tiger-rt` (see `tiger_proto::wire`). This module keeps the old
//! paths (`tiger_core::msg::Message`, `tiger_core::Message`) working.

pub use tiger_proto::msg::{Message, FRAME_BYTES};
