//! Spares as interim mirror capacity (the spare shield of Recovery v2).
//!
//! When a cub is declared failed, the decluster spans shadowing its disks
//! become the system's most exposed data: the failed cub's primaries are
//! now served from single surviving mirror pieces, and one more holder
//! failure loses them outright until a restripe cut-over rebuilds full
//! redundancy. A provisioned spare is powered, idle, and has empty
//! secondary regions — so, while the cut-over is pending, the shield
//! background-copies those mirror pieces onto a spare using the same
//! paced, admission-gated pipeline the live restriper uses. Once every
//! block of a `(failed disk, piece)` span has landed, the span is *ready*:
//! the cover path routes records for dead holders to the spare, which
//! serves them from its own copies. The shield evaporates at the next
//! restripe cut-over, when `relay_secondaries` rebuilds permanent
//! redundancy for the new geometry.

use std::collections::{HashMap, HashSet, VecDeque};

use tiger_disk::{DiskError, DiskRequest, RequestKind};
use tiger_layout::{BlockNum, CubId, DiskId, FileId, StripeConfig};
use tiger_sim::{ByteSize, SimDuration, SimTime};
use tiger_trace::{TraceEvent, CTRL};

use crate::cub::Cub;
use crate::event::Event;
use crate::system::Shared;

/// Retry delay after a transient read error on a source disk.
const TRANSIENT_RETRY: SimDuration = SimDuration::from_millis(100);

/// Which spare serves which exposed decluster span, consulted by the
/// cover path when a mirror piece's normal holder is dead.
#[derive(Debug, Default)]
pub struct ShieldMap {
    /// `(failed home disk, piece)` → the spare whose copies of that span
    /// have all landed.
    ready: HashMap<(u32, u32), CubId>,
    /// Spares holding at least one ready span (they get a narrow
    /// data-path allowance despite being marked `failed`).
    serving: HashSet<u32>,
}

impl ShieldMap {
    /// The spare serving `(failed_disk, piece)`, if that span's copies
    /// have all landed.
    pub fn serving_spare(&self, failed_disk: DiskId, piece: u32) -> Option<CubId> {
        self.ready.get(&(failed_disk.raw(), piece)).copied()
    }

    /// Whether `cub` is a spare with at least one ready span.
    pub fn is_serving_spare(&self, cub: CubId) -> bool {
        self.serving.contains(&cub.raw())
    }

    /// Marks a span ready on `spare`.
    pub(crate) fn mark_ready(&mut self, home: DiskId, piece: u32, spare: CubId) {
        self.ready.insert((home.raw(), piece), spare);
        self.serving.insert(spare.raw());
    }

    /// Evaporates the shield (restripe cut-over: the permanent mirror
    /// layout has absorbed the exposure).
    pub(crate) fn clear(&mut self) {
        self.ready.clear();
        self.serving.clear();
    }
}

/// One mirror-piece copy: read `piece` of `(file, block)` — homed on the
/// failed cub's disk `home` — from its surviving holder's disk `src` and
/// commit it on `spare`'s local disk `home_local`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ShieldCopy {
    /// The surviving holder's disk (source of the read).
    pub src: DiskId,
    /// The failed cub's disk the block is homed on.
    pub home: DiskId,
    /// Local index of `home` — also the spare's local disk the copy
    /// lands on, so the spare's disk geometry mirrors the failed cub's.
    pub home_local: u32,
    /// The receiving spare.
    pub spare: CubId,
    /// The block's file.
    pub file: FileId,
    /// The block.
    pub block: BlockNum,
    /// The decluster piece index.
    pub piece: u32,
    /// Piece size.
    pub size: ByteSize,
}

/// Where one copy is in its pipeline (same stages as a restripe move).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CopyState {
    Queued,
    Reading,
    Transferring,
    Arrived,
}

/// The background copy pipeline: every queued [`ShieldCopy`] across all
/// active campaigns, paced per source disk exactly like the live
/// restriper (idle disks only, rest at least as long as each read took).
#[derive(Debug)]
pub(crate) struct ShieldExec {
    stripe: StripeConfig,
    copies: Vec<ShieldCopy>,
    state: Vec<CopyState>,
    /// Copies not yet arrived (parked copies — source dead — count).
    pending: usize,
    /// Per-source-disk FIFO of queued copy indices.
    disk_queue: Vec<VecDeque<u32>>,
    /// Earliest next background issue per source disk.
    next_eligible: Vec<SimTime>,
    /// `(remaining, total)` copies per `(home disk, piece)` span; the
    /// span becomes ready (and traces) when remaining hits zero. Spans
    /// whose source holder is dead park forever, so completion is
    /// tracked — and traced — per span, never per whole home disk.
    span_left: HashMap<(u32, u32), (u32, u32)>,
}

impl ShieldExec {
    /// An empty pipeline over the current (frozen) stripe geometry.
    pub(crate) fn new(stripe: StripeConfig, now: SimTime) -> Self {
        let num_disks = stripe.num_disks() as usize;
        ShieldExec {
            stripe,
            copies: Vec::new(),
            state: Vec::new(),
            pending: 0,
            disk_queue: vec![VecDeque::new(); num_disks],
            next_eligible: vec![now; num_disks],
            span_left: HashMap::new(),
        }
    }

    /// Queues one campaign's copies (idempotence is the caller's job:
    /// one campaign per failed cub, one per spare).
    pub(crate) fn extend(&mut self, copies: Vec<ShieldCopy>) {
        for c in copies {
            let idx = self.copies.len() as u32;
            let s = self
                .span_left
                .entry((c.home.raw(), c.piece))
                .or_insert((0, 0));
            s.0 += 1;
            s.1 += 1;
            self.copies.push(c);
            self.state.push(CopyState::Queued);
            self.pending += 1;
            self.disk_queue[c.src.index()].push_back(idx);
        }
    }

    /// Copies not yet landed (the tick re-arms while nonzero).
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// The periodic pump: issue one background read per idle, eligible
    /// source disk. Sources that are down stay parked — if the holder
    /// never comes back, the span simply never becomes ready.
    pub(crate) fn pump(&mut self, sh: &mut Shared, cubs: &mut [Cub], now: SimTime) {
        for d in 0..self.disk_queue.len() {
            if self.disk_queue[d].is_empty() {
                continue;
            }
            let disk_id = DiskId(d as u32);
            let src_cub = self.stripe.cub_of(disk_id);
            let local = self.stripe.local_index_of(disk_id) as usize;
            let cub = &mut cubs[src_cub.index()];
            if cub.failed || cub.disks()[local].is_failed() {
                continue;
            }
            if cub.disks()[local].outstanding() > 0 || now < self.next_eligible[d] {
                continue;
            }
            let idx = *self.disk_queue[d].front().expect("queue non-empty");
            let c = self.copies[idx as usize];
            let Some(extent) = cub
                .index()
                .lookup_secondary(c.src, c.file, c.block, c.piece)
            else {
                // The holder's mirror layout changed under us (cut-over
                // already dropped the exec in that case) — drop the copy.
                self.disk_queue[d].pop_front();
                self.state[idx as usize] = CopyState::Arrived;
                self.pending -= 1;
                continue;
            };
            let req = DiskRequest {
                offset: extent.offset(),
                len: extent.length(),
                // Background class, same lane as restripe moves.
                kind: RequestKind::Mirror,
            };
            match cub.disks_mut()[local].submit(now, req) {
                Ok(done) => {
                    self.disk_queue[d].pop_front();
                    self.state[idx as usize] = CopyState::Reading;
                    self.next_eligible[d] = done + done.saturating_since(now);
                    sh.queue.schedule(done, Event::ShieldRead { idx });
                }
                Err(DiskError::Transient) => {
                    self.next_eligible[d] = now + TRANSIENT_RETRY;
                }
                Err(_) => {} // Disk died under us; the span stays parked.
            }
        }
    }

    /// A background read finished: hand the piece to the network.
    pub(crate) fn on_read_done(
        &mut self,
        sh: &mut Shared,
        cubs: &mut [Cub],
        now: SimTime,
        idx: u32,
    ) {
        if self.state[idx as usize] != CopyState::Reading {
            return;
        }
        let c = self.copies[idx as usize];
        let src_cub = self.stripe.cub_of(c.src);
        let local = self.stripe.local_index_of(c.src) as usize;
        let cub = &mut cubs[src_cub.index()];
        if cub.failed || cub.disks()[local].is_failed() {
            self.requeue(c.src, idx);
            return;
        }
        cub.disks_mut()[local].complete(now);
        let src_node = sh.cub_node(src_cub);
        let dst_node = sh.cub_node(c.spare);
        let at = sh.net.send_data(now, src_node, dst_node);
        sh.trace_net_injections(now);
        match at {
            Some(at) => {
                self.state[idx as usize] = CopyState::Transferring;
                sh.queue.schedule(at, Event::ShieldArrive { idx });
            }
            None => self.requeue(c.src, idx),
        }
    }

    /// A piece landed on its spare: commit it keyed under the *failed
    /// home disk's* id (spares have no ids in the stripe's disk
    /// namespace; the spare's read path looks shield pieces up under the
    /// home disk from the record's mirror kind), with the extent
    /// allocated on the spare's physical disk `home_local`.
    pub(crate) fn on_arrive(&mut self, sh: &mut Shared, cubs: &mut [Cub], now: SimTime, idx: u32) {
        if self.state[idx as usize] != CopyState::Transferring {
            return;
        }
        let c = self.copies[idx as usize];
        let cub = &mut cubs[c.spare.index()];
        if cub.disks()[c.home_local as usize].is_failed() {
            self.requeue(c.src, idx);
            return;
        }
        cub.load_secondary(c.home, c.home_local, c.file, c.block, c.piece, c.size);
        self.state[idx as usize] = CopyState::Arrived;
        self.pending -= 1;
        let span = self
            .span_left
            .get_mut(&(c.home.raw(), c.piece))
            .expect("span counted at extend");
        span.0 -= 1;
        if span.0 == 0 {
            sh.shield.mark_ready(c.home, c.piece, c.spare);
            sh.tracer.record(
                now,
                CTRL,
                TraceEvent::SpareShadow {
                    spare: c.spare.raw(),
                    disk: c.home.raw(),
                    piece: c.piece,
                    count: span.1,
                },
            );
        }
    }

    fn requeue(&mut self, src: DiskId, idx: u32) {
        self.state[idx as usize] = CopyState::Queued;
        self.disk_queue[src.index()].push_back(idx);
    }
}
