//! The Tiger controller (§2.1, §4.1.2–§4.1.3).
//!
//! "The Tiger controller serves only as a contact point (i.e., an IP
//! address) for clients, the system clock master, and a few other low
//! effort tasks." It routes start requests to the cub holding the first
//! block (and its successor, for redundancy), routes stop requests to the
//! cub currently serving the viewer, and does *no* per-block work — which
//! is what keeps its load flat as the system grows.
//!
//! The controller's ring-membership view lives in a sans-io
//! `tiger_proto::Membership` held by `TigerSystem` (see
//! `docs/PROTOCOL.md`); this module only keeps the viewer table and
//! request counters that the routing decisions read.

use std::collections::HashMap;

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{CubId, FileId};
use tiger_sched::{ScheduleParams, SlotId};
use tiger_sim::{Counter, SimTime};
use tiger_trace::{TraceEvent, Tracer, CTRL};

/// What the controller remembers about one viewer.
#[derive(Clone, Copy, Debug)]
pub struct ViewerRecord {
    /// The file being played.
    pub file: FileId,
    /// The client's network node id.
    pub client: u32,
    /// The slot the viewer occupies, once a cub commits the insertion.
    pub slot: Option<SlotId>,
    /// Send time of the viewer's first block, once committed.
    pub first_send: Option<SimTime>,
    /// When the client asked to start.
    pub requested_at: SimTime,
    /// A stop arrived while the start was still queued at a cub (no
    /// committed slot yet). The stop cannot be routed — there is no slot
    /// to deschedule — so it is remembered here and honoured the moment
    /// the insertion commits. Dropping it instead would leak a zombie
    /// stream: the cub would serve a viewer nobody can ever stop.
    pub stop_wanted: bool,
}

/// The controller's state.
#[derive(Debug, Default)]
pub struct Controller {
    viewers: HashMap<ViewerInstance, ViewerRecord>,
    requests: Counter,
    active_streams: u32,
}

impl Controller {
    /// Creates an idle controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a start request; returns false if the instance is already
    /// known (duplicate request).
    pub fn on_start_request(
        &mut self,
        instance: ViewerInstance,
        file: FileId,
        client: u32,
        requested_at: SimTime,
    ) -> bool {
        self.requests.incr();
        self.viewers
            .insert(
                instance,
                ViewerRecord {
                    file,
                    client,
                    slot: None,
                    first_send: None,
                    requested_at,
                    stop_wanted: false,
                },
            )
            .is_none()
    }

    /// Records a commit notification from the inserting cub. Returns true
    /// if a stop already arrived for the viewer while it was queued (the
    /// stop/insert race): the caller must deschedule it immediately, now
    /// that there finally is a slot to deschedule.
    pub fn on_insert_committed(
        &mut self,
        instance: ViewerInstance,
        slot: SlotId,
        first_send: SimTime,
    ) -> bool {
        if let Some(rec) = self.viewers.get_mut(&instance) {
            if rec.slot.is_none() {
                self.active_streams += 1;
            }
            rec.slot = Some(slot);
            rec.first_send = Some(first_send);
            rec.stop_wanted
        } else {
            false
        }
    }

    /// Handles a stop request: returns the slot and the cub whose disk next
    /// services it (plus that cub's successor gets a copy), or `None` for
    /// an unknown/uncommitted viewer.
    pub fn on_stop_request(
        &mut self,
        instance: ViewerInstance,
        params: &ScheduleParams,
        now: SimTime,
        tracer: &mut Tracer,
    ) -> Option<(SlotId, CubId)> {
        self.requests.incr();
        let rec = self.viewers.get_mut(&instance)?;
        let Some(slot) = rec.slot else {
            // The start is still queued at a cub — nothing to deschedule
            // yet. Keep the record and honour the stop at commit time.
            rec.stop_wanted = true;
            return None;
        };
        self.viewers.remove(&instance);
        self.active_streams = self.active_streams.saturating_sub(1);
        // "The controller determines from which cub the viewer is receiving
        // data": the disk that will next cross the viewer's slot.
        let stripe = params.stripe();
        let mut best: Option<(SimTime, CubId)> = None;
        for d in 0..stripe.num_disks() {
            let t = params.slot_send_time(tiger_layout::DiskId(d), slot, now);
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, stripe.cub_of(tiger_layout::DiskId(d))));
            }
        }
        let routed = best.map(|(_, cub)| (slot, cub));
        if let Some((slot, cub)) = routed {
            tracer.record(
                now,
                CTRL,
                TraceEvent::CtrlRouteDesched {
                    viewer: instance.viewer.raw(),
                    inc: instance.incarnation,
                    slot: slot.raw(),
                    target: cub.raw(),
                },
            );
        }
        routed
    }

    /// Marks a viewer finished (EOF); frees its record.
    pub fn on_viewer_finished(&mut self, instance: ViewerInstance) {
        if self.viewers.remove(&instance).is_some() {
            self.active_streams = self.active_streams.saturating_sub(1);
        }
    }

    /// Streams currently committed into the schedule.
    pub fn active_streams(&self) -> u32 {
        self.active_streams
    }

    /// The record for `instance`, if known.
    pub fn viewer(&self, instance: &ViewerInstance) -> Option<&ViewerRecord> {
        self.viewers.get(instance)
    }

    /// Start/stop requests handled per second over the current window.
    pub fn request_rate(&self, now: SimTime) -> f64 {
        self.requests.window_rate(now)
    }

    /// Starts a fresh measurement window.
    pub fn reset_window(&mut self, now: SimTime) {
        self.requests.reset_window(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::{StripeConfig, ViewerId};
    use tiger_sim::{Bandwidth, ByteSize, SimDuration};

    fn params() -> ScheduleParams {
        ScheduleParams::derive(
            StripeConfig::new(4, 1, 2),
            SimDuration::from_secs(1),
            ByteSize::from_bytes(250_000),
            SimDuration::from_millis(100),
            Bandwidth::from_mbit_per_sec(135),
        )
    }

    fn inst(v: u64) -> ViewerInstance {
        ViewerInstance {
            viewer: ViewerId(v),
            incarnation: 0,
        }
    }

    #[test]
    fn start_commit_stop_lifecycle() {
        let p = params();
        let mut c = Controller::new();
        assert!(c.on_start_request(inst(1), FileId(0), 5, SimTime::ZERO));
        assert!(
            !c.on_start_request(inst(1), FileId(0), 5, SimTime::ZERO),
            "duplicate"
        );
        assert_eq!(c.active_streams(), 0, "not committed yet");
        c.on_insert_committed(inst(1), SlotId(7), SimTime::from_secs(2));
        assert_eq!(c.active_streams(), 1);
        let (slot, cub) = c
            .on_stop_request(inst(1), &p, SimTime::from_secs(10), &mut Tracer::disabled())
            .expect("known viewer");
        assert_eq!(slot, SlotId(7));
        assert!(cub.raw() < 4);
        assert_eq!(c.active_streams(), 0);
        assert!(c
            .on_stop_request(inst(1), &p, SimTime::from_secs(10), &mut Tracer::disabled())
            .is_none());
    }

    #[test]
    fn stop_routes_to_next_servicing_cub() {
        let p = params();
        let mut c = Controller::new();
        c.on_start_request(inst(1), FileId(0), 5, SimTime::ZERO);
        c.on_insert_committed(inst(1), SlotId(0), SimTime::from_secs(1));
        let now = SimTime::from_secs(10);
        let (slot, cub) = c
            .on_stop_request(inst(1), &p, now, &mut Tracer::disabled())
            .expect("known");
        // Verify the chosen cub really is the next to service the slot.
        let stripe = p.stripe();
        let mut times: Vec<(SimTime, CubId)> = (0..stripe.num_disks())
            .map(|d| {
                let disk = tiger_layout::DiskId(d);
                (p.slot_send_time(disk, slot, now), stripe.cub_of(disk))
            })
            .collect();
        times.sort();
        assert_eq!(cub, times[0].1);
    }

    #[test]
    fn stop_before_commit_is_remembered_not_dropped() {
        let p = params();
        let mut c = Controller::new();
        c.on_start_request(inst(4), FileId(0), 5, SimTime::ZERO);
        // Stop while the start is still queued at a cub: unroutable now …
        assert!(c
            .on_stop_request(inst(4), &p, SimTime::from_secs(1), &mut Tracer::disabled())
            .is_none());
        // … but the record survives with the stop pinned to it.
        assert!(c.viewer(&inst(4)).expect("record kept").stop_wanted);
        // The commit reports the pending stop so the caller deschedules.
        assert!(c.on_insert_committed(inst(4), SlotId(2), SimTime::from_secs(3)));
        let (slot, _) = c
            .on_stop_request(inst(4), &p, SimTime::from_secs(3), &mut Tracer::disabled())
            .expect("routable once committed");
        assert_eq!(slot, SlotId(2));
        assert_eq!(c.active_streams(), 0, "commit+stop nets out");
        // A normal lifecycle reports no pending stop at commit.
        c.on_start_request(inst(5), FileId(0), 5, SimTime::ZERO);
        assert!(!c.on_insert_committed(inst(5), SlotId(3), SimTime::from_secs(4)));
    }

    #[test]
    fn eof_releases_stream_count() {
        let mut c = Controller::new();
        c.on_start_request(inst(2), FileId(1), 5, SimTime::ZERO);
        c.on_insert_committed(inst(2), SlotId(3), SimTime::from_secs(1));
        c.on_viewer_finished(inst(2));
        assert_eq!(c.active_streams(), 0);
        c.on_viewer_finished(inst(2)); // idempotent
        assert_eq!(c.active_streams(), 0);
    }

    #[test]
    fn request_rate_windows() {
        let mut c = Controller::new();
        c.reset_window(SimTime::ZERO);
        for i in 0..10 {
            c.on_start_request(inst(i), FileId(0), 1, SimTime::ZERO);
        }
        assert!((c.request_rate(SimTime::from_secs(5)) - 2.0).abs() < 1e-9);
    }
}
