//! The client (viewer) model.
//!
//! §5: "we ran a special client application that does not render any video,
//! but rather simply makes sure that the expected data arrives on time."
//! Each simulated client machine carries many viewers; a viewer records
//! per-block arrival (assembling declustered mirror pieces when the system
//! is in failed mode) and reports anything it never received.

use std::collections::HashMap;

use tiger_layout::ids::ViewerInstance;
use tiger_layout::FileId;
use tiger_sim::{SimDuration, SimTime};

/// How many block play times late a block may arrive before the client
/// discards it as useless for rendering.
pub const LATE_GRACE_BLOCKS: u64 = 10;

/// Progress of one viewer (one play-request instance).
#[derive(Clone, Debug)]
pub struct ViewerProgress {
    /// The file being played.
    pub file: FileId,
    /// Total blocks in the file.
    pub num_blocks: u32,
    /// When the start request was issued.
    pub requested_at: SimTime,
    /// Schedule load at request time (for the Figure 10 x-axis).
    pub load_at_request: f64,
    /// When the first byte-complete block arrived.
    pub first_block_at: Option<SimTime>,
    /// Per-block received flags.
    received: Vec<bool>,
    /// Partial mirror-piece assembly: block -> bitmask of pieces seen.
    pieces: HashMap<u32, (u32, u32)>, // (mask, total)
    /// First block this play instance covers (0 for a from-the-top play;
    /// a resume or seek starts later). Blocks below it are not expected.
    pub base_block: u32,
    /// Blocks that arrived too late to be rendered (discarded).
    pub late_blocks: u32,
    /// Fully-assembled blocks that arrived more than once. Tiger never
    /// retransmits, so any double delivery is a protocol bug (or an
    /// injected network duplicate on the control plane leaking into
    /// data, which the fault invariants treat the same way).
    pub dup_blocks: u32,
    /// Whether the viewer was stopped by request.
    pub stopped: bool,
    /// Highest block index received (None before any data).
    pub high_water: Option<u32>,
}

impl ViewerProgress {
    fn new(
        file: FileId,
        num_blocks: u32,
        base_block: u32,
        requested_at: SimTime,
        load: f64,
    ) -> Self {
        let mut received = vec![false; num_blocks as usize];
        // Blocks before the base are not part of this play instance; mark
        // them received so the gap accounting ignores them.
        for r in received.iter_mut().take(base_block as usize) {
            *r = true;
        }
        ViewerProgress {
            file,
            num_blocks,
            requested_at,
            load_at_request: load,
            first_block_at: None,
            received,
            pieces: HashMap::new(),
            base_block,
            late_blocks: 0,
            dup_blocks: 0,
            stopped: false,
            high_water: None,
        }
    }

    /// Whether every block arrived.
    pub fn complete(&self) -> bool {
        self.received.iter().all(|&b| b)
    }

    /// Whether block `b` was (fully) received.
    pub fn block_received(&self, b: u32) -> bool {
        self.received.get(b as usize).copied().unwrap_or(false)
    }

    /// Blocks received so far (within this play instance's range).
    pub fn blocks_received(&self) -> u32 {
        self.received[self.base_block as usize..]
            .iter()
            .filter(|&&b| b)
            .count() as u32
    }

    /// Blocks that should have arrived but did not: every gap below the
    /// high-water mark. A viewer that is still mid-play at measurement time
    /// does not count its unplayed tail; use
    /// [`ViewerProgress::tail_missing`] for runs that covered the full
    /// play time.
    pub fn blocks_missing(&self) -> u32 {
        let Some(high) = self.high_water else {
            return 0; // Never started; counted as a start failure, not loss.
        };
        self.received[..=high as usize]
            .iter()
            .filter(|&&b| !b)
            .count() as u32
    }

    /// Blocks above the high-water mark that never arrived. Zero for
    /// stopped viewers; for completed runs this exposes starved streams
    /// (e.g. schedule information lost in a failure).
    pub fn tail_missing(&self) -> u32 {
        if self.stopped {
            return 0;
        }
        let Some(high) = self.high_water else {
            return 0;
        };
        self.num_blocks - (high + 1)
    }

    /// The start latency, if the first block arrived.
    pub fn start_latency_secs(&self) -> Option<f64> {
        self.first_block_at
            .map(|t| t.saturating_since(self.requested_at).as_secs_f64())
    }
}

/// Aggregate per-client report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Viewers that received every block of their file.
    pub completed_viewers: u32,
    /// Viewers stopped early by request.
    pub stopped_viewers: u32,
    /// Viewers that never received any data.
    pub never_started: u32,
    /// Total blocks received (fully assembled).
    pub blocks_received: u64,
    /// Total blocks missing (gaps and lost tails).
    pub blocks_missing: u64,
    /// Total fully-assembled blocks delivered more than once.
    pub dup_blocks: u64,
}

/// One client machine, possibly receiving many concurrent streams.
#[derive(Debug, Default)]
pub struct Client {
    viewers: HashMap<ViewerInstance, ViewerProgress>,
}

impl Client {
    /// Creates a client with no viewers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new play request starting at `from_block` (0 for the
    /// beginning; resumes and seeks start mid-file).
    pub fn on_request(
        &mut self,
        instance: ViewerInstance,
        file: FileId,
        num_blocks: u32,
        from_block: u32,
        requested_at: SimTime,
        schedule_load: f64,
    ) {
        self.viewers.insert(
            instance,
            ViewerProgress::new(file, num_blocks, from_block, requested_at, schedule_load),
        );
    }

    /// Handles arriving stream data. Returns `true` when this delivery
    /// completed a whole block (for first-block latency instrumentation the
    /// caller checks [`ViewerProgress::first_block_at`]).
    ///
    /// §5: the test client "makes sure that the expected data arrives on
    /// time" — data arriving more than [`LATE_GRACE_BLOCKS`] block play
    /// times after its expected instant is counted late and discarded (a
    /// renderer would have skipped past it long ago).
    pub fn on_stream_data(
        &mut self,
        instance: ViewerInstance,
        block: u32,
        piece: Option<u32>,
        total_pieces: u32,
        now: SimTime,
    ) -> bool {
        let Some(v) = self.viewers.get_mut(&instance) else {
            return false; // Data for a stopped/unknown viewer: ignored.
        };
        if block >= v.num_blocks {
            return false;
        }
        if block < v.base_block {
            return false; // Before this play instance's start point.
        }
        if let Some(first) = v.first_block_at {
            // Blocks arrive one per block play time after the first (1 s in
            // every configuration in this repo), counted from the play
            // instance's base block.
            let expected = first + SimDuration::from_secs(u64::from(block - v.base_block));
            if now.saturating_since(expected) > SimDuration::from_secs(LATE_GRACE_BLOCKS) {
                v.late_blocks += 1;
                return false;
            }
        }
        let completed = match piece {
            None => true,
            Some(p) => {
                let entry = v.pieces.entry(block).or_insert((0, total_pieces));
                entry.0 |= 1 << p;
                let done = entry.0.count_ones() >= entry.1;
                if done {
                    v.pieces.remove(&block);
                }
                done
            }
        };
        if completed {
            if v.received[block as usize] {
                v.dup_blocks += 1;
            } else {
                v.received[block as usize] = true;
                v.high_water = Some(v.high_water.map_or(block, |h| h.max(block)));
                if v.first_block_at.is_none() {
                    v.first_block_at = Some(now);
                }
            }
        }
        completed
    }

    /// Marks a viewer stopped (deschedule issued).
    pub fn on_stopped(&mut self, instance: ViewerInstance) {
        if let Some(v) = self.viewers.get_mut(&instance) {
            v.stopped = true;
        }
    }

    /// Progress of one viewer.
    pub fn viewer(&self, instance: &ViewerInstance) -> Option<&ViewerProgress> {
        self.viewers.get(instance)
    }

    /// All viewers on this client.
    pub fn viewers(&self) -> impl Iterator<Item = (&ViewerInstance, &ViewerProgress)> {
        self.viewers.iter()
    }

    /// The aggregate report.
    pub fn report(&self) -> ClientReport {
        let mut r = ClientReport::default();
        for v in self.viewers.values() {
            r.blocks_received += u64::from(v.blocks_received());
            r.blocks_missing += u64::from(v.blocks_missing());
            r.dup_blocks += u64::from(v.dup_blocks);
            if v.first_block_at.is_none() {
                r.never_started += 1;
            } else if v.stopped {
                r.stopped_viewers += 1;
            } else if v.complete() {
                r.completed_viewers += 1;
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::ViewerId;

    fn inst(v: u64) -> ViewerInstance {
        ViewerInstance {
            viewer: ViewerId(v),
            incarnation: 0,
        }
    }

    #[test]
    fn whole_blocks_accumulate() {
        let mut c = Client::new();
        c.on_request(inst(1), FileId(0), 3, 0, SimTime::ZERO, 0.1);
        for b in 0..3 {
            assert!(c.on_stream_data(inst(1), b, None, 1, SimTime::from_secs(u64::from(b) + 2)));
        }
        let v = c.viewer(&inst(1)).expect("known");
        assert!(v.complete());
        assert_eq!(v.blocks_missing(), 0);
        assert_eq!(v.start_latency_secs(), Some(2.0));
        assert_eq!(c.report().completed_viewers, 1);
    }

    #[test]
    fn mirror_pieces_assemble() {
        let mut c = Client::new();
        c.on_request(inst(1), FileId(0), 2, 0, SimTime::ZERO, 0.1);
        // Block 0 arrives as 4 declustered pieces.
        assert!(!c.on_stream_data(inst(1), 0, Some(0), 4, SimTime::from_millis(100)));
        assert!(!c.on_stream_data(inst(1), 0, Some(1), 4, SimTime::from_millis(200)));
        assert!(!c.on_stream_data(inst(1), 0, Some(3), 4, SimTime::from_millis(300)));
        // Duplicate piece is idempotent.
        assert!(!c.on_stream_data(inst(1), 0, Some(1), 4, SimTime::from_millis(350)));
        assert!(c.on_stream_data(inst(1), 0, Some(2), 4, SimTime::from_millis(400)));
        let v = c.viewer(&inst(1)).expect("known");
        assert_eq!(v.blocks_received(), 1);
    }

    #[test]
    fn gaps_count_as_missing() {
        let mut c = Client::new();
        c.on_request(inst(1), FileId(0), 5, 0, SimTime::ZERO, 0.1);
        c.on_stream_data(inst(1), 0, None, 1, SimTime::from_secs(1));
        c.on_stream_data(inst(1), 2, None, 1, SimTime::from_secs(3));
        let v = c.viewer(&inst(1)).expect("known");
        // Block 1 is a gap; blocks 3-4 are the (not yet due) tail.
        assert_eq!(v.blocks_missing(), 1);
        assert_eq!(v.tail_missing(), 2);
    }

    #[test]
    fn stopped_viewer_only_counts_gaps_below_high_water() {
        let mut c = Client::new();
        c.on_request(inst(1), FileId(0), 100, 0, SimTime::ZERO, 0.1);
        c.on_stream_data(inst(1), 0, None, 1, SimTime::from_secs(1));
        c.on_stream_data(inst(1), 1, None, 1, SimTime::from_secs(2));
        c.on_stream_data(inst(1), 3, None, 1, SimTime::from_secs(4));
        c.on_stopped(inst(1));
        let v = c.viewer(&inst(1)).expect("known");
        assert_eq!(v.blocks_missing(), 1, "only block 2");
        assert_eq!(c.report().stopped_viewers, 1);
    }

    #[test]
    fn never_started_viewers_are_reported() {
        let mut c = Client::new();
        c.on_request(inst(1), FileId(0), 5, 0, SimTime::ZERO, 0.99);
        assert_eq!(c.report().never_started, 1);
        assert_eq!(c.report().blocks_missing, 0);
    }

    #[test]
    fn data_for_unknown_viewer_ignored() {
        let mut c = Client::new();
        assert!(!c.on_stream_data(inst(9), 0, None, 1, SimTime::ZERO));
    }
}
