//! The Tiger distributed schedule-management protocol (paper §4).
//!
//! This crate animates the pure schedule structures of `tiger-sched` into
//! the full distributed system: cubs that hold bounded views and forward
//! viewer-state records around the ring (doubly, idempotently), a
//! controller that routes start/stop requests, clients that verify timely
//! delivery, a deadman failure detector with declustered-mirror takeover,
//! the ownership-window insertion protocol of the single-bitrate system,
//! the two-phase reservation insertion of the multiple-bitrate network
//! schedule, and the centralized-scheduler baseline of §3.3.
//!
//! Everything runs on the deterministic event queue of `tiger-sim`; a run
//! is a pure function of `(TigerConfig, workload, seed)`.
//!
//! # Quick start
//!
//! ```
//! use tiger_core::{TigerConfig, TigerSystem};
//! use tiger_sim::{Bandwidth, SimDuration, SimTime};
//!
//! // A small two-cub system with one short file.
//! let mut cfg = TigerConfig::small_test();
//! cfg.seed = 7;
//! let mut sys = TigerSystem::new(cfg);
//! let file = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(8));
//! let client = sys.add_client();
//! sys.request_start(SimTime::from_millis(10), client, file);
//! sys.run_until(SimTime::from_secs(30));
//! let report = sys.client_report(client);
//! assert_eq!(report.completed_viewers, 1);
//! assert_eq!(report.blocks_missing, 0);
//! ```

pub mod central;
pub mod client;
pub mod config;
pub mod controller;
pub mod cpu;
pub mod cub;
pub mod event;
pub mod mbr;
pub mod mbr_dist;
pub mod metrics;
pub mod msg;
pub mod recovery;
pub mod restripe;
pub mod shield;
pub mod system;

pub use central::{central_control_send_rate, CentralSystem};
pub use client::{Client, ClientReport};
pub use config::{ForwardingPolicy, TigerConfig};
pub use controller::Controller;
pub use cpu::CpuModel;
pub use cub::Cub;
pub use mbr::{MbrConfig, MbrCoordinator, MbrOutcome};
pub use mbr_dist::{MbrDistStats, MbrSystem};
pub use metrics::{LossReport, Metrics, WindowSample};
pub use msg::Message;
pub use restripe::LiveRestripe;
pub use shield::ShieldMap;
pub use system::{RestripeStep, TigerSystem};
pub use tiger_layout::RedundancyMode;
