//! Multiple-bitrate insertion: the two-phase reservation protocol of §4.2.
//!
//! In the multiple-bitrate Tiger, schedule entries are one block play time
//! wide, and cubs are exactly one block play time apart in the schedule —
//! so no single cub ever has exclusive ownership of the span an insertion
//! needs, and the single-bitrate ownership trick cannot work. Instead:
//!
//! 1. the originating cub checks its local view; if the insertion can't be
//!    ruled out it *tentatively* inserts, **starts the first disk read
//!    speculatively**, and asks its successor to reserve the space;
//! 2. the successor checks its own view, records a reservation, and
//!    replies;
//! 3. if the confirmation arrives before the first block must be sent, the
//!    originator commits (and the viewer state replaces the reservation);
//!    otherwise it aborts, releases the reservation, and retries later.
//!
//! Because the disk read and the round trip overlap, "there will almost
//! always be time for the communication with the succeeding cub without
//! having to increase the scheduling lead value" — the ablation bench
//! measures exactly that.

use tiger_layout::ids::ViewerInstance;
use tiger_layout::ViewerId;
use tiger_net::LatencyModel;
use tiger_sched::{NetEntryId, NetworkSchedule};
use tiger_sim::{Bandwidth, RngTree, SimDuration, SimRng, SimTime};

/// Configuration of a multiple-bitrate schedule ring.
#[derive(Clone, Debug)]
pub struct MbrConfig {
    /// Number of cubs in the ring.
    pub num_cubs: u32,
    /// Block play time (entry width).
    pub block_play_time: SimDuration,
    /// NIC capacity (schedule height).
    pub nic_capacity: Bandwidth,
    /// Start-position quantum (`block_play_time / decluster` per §3.2), or
    /// `None` for arbitrary starts (the fragmentation ablation).
    pub quantum: Option<SimDuration>,
    /// Control latency between cubs.
    pub latency: LatencyModel,
    /// Time to read a first block from disk (speculative read).
    pub first_read: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl MbrConfig {
    /// A testbed-like default: 14 cubs, 1 s entries, 135 Mbit/s NICs,
    /// quantized starts at bpt/4.
    pub fn default_ring() -> Self {
        MbrConfig {
            num_cubs: 14,
            block_play_time: SimDuration::from_secs(1),
            nic_capacity: Bandwidth::from_mbit_per_sec(135),
            quantum: Some(SimDuration::from_millis(250)),
            latency: LatencyModel::lan_default(),
            first_read: SimDuration::from_millis(60),
            seed: 42,
        }
    }
}

/// Outcome of one two-phase insertion attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MbrOutcome {
    /// Committed: the viewer is in the network schedule.
    Committed {
        /// Ring start position of the entry.
        start: SimDuration,
        /// When the insertion became final.
        committed_at: SimTime,
        /// Whether the reserve round trip was fully hidden behind the
        /// speculative disk read.
        confirm_hidden: bool,
    },
    /// The local view ruled the insertion out (schedule full at every
    /// admissible start).
    RejectedLocal,
    /// The successor refused or answered too late; the tentative entry was
    /// aborted and the disk read wasted.
    Aborted,
}

/// Coordinates two-phase insertions over per-cub views of the network
/// schedule.
#[derive(Debug)]
pub struct MbrCoordinator {
    cfg: MbrConfig,
    /// Per-cub views. Committed entries are reflected everywhere (the
    /// steady-state propagation keeps views current at the lead times that
    /// matter); tentative entries and reservations live only in the views
    /// of the two cubs involved.
    views: Vec<NetworkSchedule>,
    rng: SimRng,
    next_viewer: u64,
    /// (viewer, entry ids per view) for committed entries.
    committed: Vec<(ViewerInstance, Vec<NetEntryId>)>,
    aborted_attempts: u64,
    committed_attempts: u64,
    hidden_confirms: u64,
}

impl MbrCoordinator {
    /// Creates a ring with empty schedules.
    pub fn new(cfg: MbrConfig) -> Self {
        let views = (0..cfg.num_cubs)
            .map(|_| {
                NetworkSchedule::new(
                    cfg.num_cubs,
                    cfg.block_play_time,
                    cfg.nic_capacity,
                    cfg.quantum,
                )
            })
            .collect();
        let rng = RngTree::new(cfg.seed).fork("mbr", 0);
        MbrCoordinator {
            cfg,
            views,
            rng,
            next_viewer: 0,
            committed: Vec::new(),
            aborted_attempts: 0,
            committed_attempts: 0,
            hidden_confirms: 0,
        }
    }

    /// The view held by `cub` (for inspection).
    pub fn view(&self, cub: u32) -> &NetworkSchedule {
        &self.views[cub as usize]
    }

    /// Attempts a two-phase insertion of a `rate` stream originating at
    /// `origin` at time `now`. The stream must start within
    /// `deadline` of `now` (the scheduling lead budget).
    pub fn try_insert(
        &mut self,
        now: SimTime,
        origin: u32,
        rate: Bandwidth,
        deadline: SimDuration,
    ) -> MbrOutcome {
        let instance = ViewerInstance {
            viewer: ViewerId(self.next_viewer),
            incarnation: 0,
        };
        self.next_viewer += 1;

        // Phase 0: local check. "It first checks its local copy of the
        // schedule to see if it can rule out the insertion."
        let probe = self.cfg.quantum.unwrap_or(SimDuration::from_millis(50));
        let mut starts = self.views[origin as usize].admissible_starts(rate, probe);
        let Some(start) = starts.next() else {
            return MbrOutcome::RejectedLocal;
        };

        // Phase 1: tentative insert + speculative disk read + reserve
        // request to the successor.
        let tentative = self.views[origin as usize]
            .insert(instance, start, rate, true)
            .expect("admissible start fits");
        let succ = (origin + 1) % self.cfg.num_cubs;
        let rtt = self.cfg.latency.sample(&mut self.rng) + self.cfg.latency.sample(&mut self.rng);
        let read_done = now + self.cfg.first_read;
        let reply_at = now + rtt;

        // Successor-side check against *its* view (which may hold its own
        // reservations the originator cannot see).
        let succ_ok = self.views[succ as usize].fits(start, rate);
        let reservation = if succ_ok {
            Some(
                self.views[succ as usize]
                    .insert(instance, start, rate, true)
                    .expect("fits just checked"),
            )
        } else {
            None
        };

        // Phase 2: commit or abort.
        let in_time = reply_at <= now + deadline;
        if succ_ok && in_time {
            self.views[origin as usize]
                .commit(tentative)
                .expect("tentative entry exists");
            let res = reservation.expect("reservation recorded");
            // "When the succeeding cub … receives the viewer state, it will
            // replace the reservation with a real schedule entry."
            self.views[succ as usize]
                .commit(res)
                .expect("reservation exists");
            // Propagate the committed entry into every other view.
            let mut ids = vec![NetEntryId(0); 0];
            for (i, view) in self.views.iter_mut().enumerate() {
                if i as u32 == origin {
                    ids.push(tentative);
                } else if i as u32 == succ {
                    ids.push(res);
                } else {
                    let id = view
                        .insert(instance, start, rate, false)
                        .expect("committed entries fit every consistent view");
                    ids.push(id);
                }
            }
            self.committed.push((instance, ids));
            self.committed_attempts += 1;
            let hidden = rtt <= self.cfg.first_read;
            if hidden {
                self.hidden_confirms += 1;
            }
            MbrOutcome::Committed {
                start,
                committed_at: read_done.max(reply_at),
                confirm_hidden: hidden,
            }
        } else {
            // "It will abort the tentative schedule insertion and stop the
            // disk I/O."
            self.views[origin as usize]
                .abort(tentative)
                .expect("tentative entry exists");
            if let Some(res) = reservation {
                self.views[succ as usize]
                    .abort(res)
                    .expect("reservation exists");
            }
            self.aborted_attempts += 1;
            MbrOutcome::Aborted
        }
    }

    /// Removes a committed viewer from every view (deschedule).
    pub fn remove(&mut self, instance: ViewerInstance) -> bool {
        let Some(pos) = self.committed.iter().position(|(i, _)| *i == instance) else {
            return false;
        };
        self.committed.swap_remove(pos);
        for view in &mut self.views {
            view.remove_instance(instance);
        }
        true
    }

    /// Committed streams.
    pub fn committed_streams(&self) -> usize {
        self.committed.len()
    }

    /// Fraction of committed insertions whose confirmation round trip was
    /// fully hidden behind the speculative disk read.
    pub fn hidden_confirm_fraction(&self) -> f64 {
        if self.committed_attempts == 0 {
            return 0.0;
        }
        self.hidden_confirms as f64 / self.committed_attempts as f64
    }

    /// Aborted insertion attempts.
    pub fn aborted_attempts(&self) -> u64 {
        self.aborted_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord() -> MbrCoordinator {
        MbrCoordinator::new(MbrConfig::default_ring())
    }

    #[test]
    fn basic_insert_commits() {
        let mut c = coord();
        let out = c.try_insert(
            SimTime::ZERO,
            0,
            Bandwidth::from_mbit_per_sec(2),
            SimDuration::from_millis(600),
        );
        assert!(matches!(out, MbrOutcome::Committed { .. }), "{out:?}");
        assert_eq!(c.committed_streams(), 1);
        // Every view reflects the commit.
        for cub in 0..14 {
            assert_eq!(c.view(cub).len(), 1);
        }
    }

    #[test]
    fn confirm_latency_usually_hidden() {
        let mut c = coord();
        for i in 0..50 {
            let origin = i % 14;
            let _ = c.try_insert(
                SimTime::from_secs(u64::from(i)),
                origin,
                Bandwidth::from_mbit_per_sec(2),
                SimDuration::from_millis(600),
            );
        }
        // LAN RTT (4-20 ms) vs a 60 ms disk read: overlap hides virtually
        // every confirmation (§4.2: "there will almost always be time").
        assert!(c.hidden_confirm_fraction() > 0.9);
    }

    #[test]
    fn full_ring_rejects_locally() {
        let mut cfg = MbrConfig::default_ring();
        cfg.nic_capacity = Bandwidth::from_mbit_per_sec(4);
        let mut c = MbrCoordinator::new(cfg);
        let mut committed = 0;
        for i in 0..100 {
            match c.try_insert(
                SimTime::from_millis(u64::from(i) * 10),
                i % 14,
                Bandwidth::from_mbit_per_sec(2),
                SimDuration::from_secs(1),
            ) {
                MbrOutcome::Committed { .. } => committed += 1,
                MbrOutcome::RejectedLocal => break,
                MbrOutcome::Aborted => {}
            }
        }
        // 4 Mbit/s × 14 s ring / (2 Mbit/s × 1 s entries) = 28 streams max.
        assert_eq!(committed, 28);
        assert!(matches!(
            c.try_insert(
                SimTime::from_secs(10),
                3,
                Bandwidth::from_mbit_per_sec(2),
                SimDuration::from_secs(1)
            ),
            MbrOutcome::RejectedLocal
        ));
    }

    #[test]
    fn slow_confirm_aborts_and_releases() {
        let mut cfg = MbrConfig::default_ring();
        cfg.latency = LatencyModel::fixed(SimDuration::from_millis(400));
        let mut c = MbrCoordinator::new(cfg);
        let out = c.try_insert(
            SimTime::ZERO,
            0,
            Bandwidth::from_mbit_per_sec(2),
            SimDuration::from_millis(600), // RTT = 800 ms > deadline.
        );
        assert_eq!(out, MbrOutcome::Aborted);
        assert_eq!(c.committed_streams(), 0);
        // The tentative entry and reservation were released.
        assert_eq!(c.view(0).len(), 0);
        assert_eq!(c.view(1).len(), 0);
        // A retry with a workable deadline succeeds in the freed space.
        let out = c.try_insert(
            SimTime::from_secs(1),
            0,
            Bandwidth::from_mbit_per_sec(2),
            SimDuration::from_secs(1),
        );
        assert!(matches!(out, MbrOutcome::Committed { .. }));
    }

    #[test]
    fn remove_clears_all_views() {
        let mut c = coord();
        let out = c.try_insert(
            SimTime::ZERO,
            0,
            Bandwidth::from_mbit_per_sec(2),
            SimDuration::from_millis(600),
        );
        assert!(matches!(out, MbrOutcome::Committed { .. }));
        let instance = ViewerInstance {
            viewer: ViewerId(0),
            incarnation: 0,
        };
        assert!(c.remove(instance));
        assert!(!c.remove(instance));
        for cub in 0..14 {
            assert_eq!(c.view(cub).len(), 0);
        }
    }
}
