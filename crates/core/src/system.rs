//! The assembled Tiger system: event loop, node wiring, content loading,
//! fault injection, and measurement windows.

use tiger_coded::CodedPlacement;
use tiger_disk::Disk;
use tiger_faults::{
    DiskFaultKind, DiskFaults, FaultPlan, NetFaults, NetInjection, NetInjectionKind, ProcFaults,
    ProcessFault, Topology,
};
use tiger_layout::catalog::BitrateMode;
use tiger_layout::ids::ViewerInstance;
use tiger_layout::{
    BlockNum, CubId, DiskId, FileCatalog, FileId, MirrorPiece, MirrorPlacement, Redundancy as _,
    RedundancyMode, StripeConfig, ViewerId,
};
use tiger_net::{NetNode, Network};
use tiger_sched::disk_schedule::Omniscient;
use tiger_sched::{Deschedule, NetworkSchedule, ScheduleParams};
use tiger_sim::{Bandwidth, ByteSize, EventQueue, RngTree, SimDuration, SimTime};
use tiger_trace::{TraceEvent, Tracer, CTRL};

use crate::client::{Client, ClientReport};
use crate::config::TigerConfig;
use crate::controller::Controller;
use crate::cpu::CpuModel;
use crate::cub::Cub;
use crate::event::Event;
use crate::metrics::{Metrics, WindowSample};
use crate::msg::Message;
use tiger_proto::Membership;

/// State shared by all component handlers: the event queue, the network,
/// static configuration, and measurement sinks.
#[derive(Debug)]
pub struct Shared {
    /// Static configuration.
    pub cfg: TigerConfig,
    /// Derived schedule parameters.
    pub params: ScheduleParams,
    /// The (replicated) file catalog.
    pub catalog: FileCatalog,
    /// Mirror placement helper.
    pub placement: MirrorPlacement,
    /// The deterministic event queue.
    pub queue: EventQueue<Event>,
    /// The switched network.
    pub net: Network,
    /// Measurement sinks.
    pub metrics: Metrics,
    /// Omniscient hallucination checker (tests and verification runs).
    pub omniscient: Option<Omniscient>,
    /// Protocol event recorder (disabled unless `TIGER_TRACE*` is set or
    /// [`crate::TigerSystem::enable_trace`] is called). Purely an
    /// observer: nothing in the simulation reads it back, so enabling it
    /// cannot change a run.
    pub tracer: Tracer,
    /// Process-level fault injections (freeze windows). Disabled unless a
    /// fault plan was applied; like the tracer, the no-faults path costs
    /// one pointer test.
    pub faults: ProcFaults,
    /// Coded-backend runtime (shard placement plus the per-disk load
    /// index holder choice ranks against). `None` under mirroring.
    pub coded: Option<CodedRuntime>,
    /// Ready spare-shield spans: which spare serves which failed disk's
    /// mirror pieces. Cubs consult it on the cover path; empty (and
    /// costing one hash probe on the failure paths only) unless a shield
    /// campaign completed spans.
    pub shield: crate::shield::ShieldMap,
}

/// Runtime state of the `tiger-coded` backend: the shard placement and
/// one admission ring per *disk* — PR 7's incrementally-maintained load
/// index, reused here so the home's coordinator can rank a block's
/// `2k − 1` candidate shard holders by how loaded each disk already is
/// at the block's ring position. Capacity is effectively unbounded (the
/// rings track load, they never reject), and reservations are released
/// when the home's schedule entry is reclaimed.
#[derive(Debug)]
pub struct CodedRuntime {
    /// Shard placement/geometry helper (`k = decluster`, `n = 2k`).
    pub placement: CodedPlacement,
    /// Per-disk load rings, indexed by `DiskId`.
    pub loads: Vec<NetworkSchedule>,
    /// Ring length (`block_play_time × num_disks`), cached for position
    /// arithmetic.
    ring_len: SimDuration,
    /// Entry quantum (= the block play time).
    quantum: SimDuration,
}

impl CodedRuntime {
    /// Builds the runtime for `stripe` with entry windows of `bpt`.
    pub fn new(stripe: StripeConfig, bpt: SimDuration) -> Self {
        let num_disks = stripe.num_disks();
        // The rings only *measure* load; give them more capacity than any
        // schedule can commit so an insert never rejects.
        let unbounded = Bandwidth::from_bits_per_sec(1 << 60);
        let loads = (0..num_disks)
            .map(|_| NetworkSchedule::new(num_disks, bpt, unbounded, Some(bpt)))
            .collect();
        CodedRuntime {
            placement: CodedPlacement::new(stripe),
            loads,
            ring_len: bpt.mul_u64(u64::from(num_disks)),
            quantum: bpt,
        }
    }

    /// The quantized ring position of absolute time `at`.
    fn ring_pos(&self, at: SimTime) -> SimDuration {
        let pos = SimDuration::from_nanos(at.as_nanos() % self.ring_len.as_nanos());
        pos - SimDuration::from_nanos(pos.as_nanos() % self.quantum.as_nanos())
    }

    /// Peak reserved load on `disk` in the entry window containing `at`.
    pub fn load_at(&self, disk: DiskId, at: SimTime) -> Bandwidth {
        self.loads[disk.index()].max_load_in_entry_window(self.ring_pos(at))
    }

    /// Reserves `rate` on `disk` for `instance` around `at` (the block's
    /// send window). Idempotence is not needed: each accepted block
    /// reserves once and releases at reclaim.
    pub fn reserve(
        &mut self,
        disk: DiskId,
        instance: ViewerInstance,
        at: SimTime,
        rate: Bandwidth,
    ) {
        let pos = self.ring_pos(at);
        let _ = self.loads[disk.index()].insert(instance, pos, rate, false);
    }

    /// Releases every reservation `instance` holds on the `2k` disks of
    /// the block homed on `home`.
    pub fn release(&mut self, home: DiskId, instance: ViewerInstance) {
        for j in 0..self.placement.n() {
            let d = self.placement.shard_disk(home, j);
            self.loads[d.index()].remove_instance(instance);
        }
    }
}

impl Shared {
    /// The (primary) controller's network node.
    pub fn controller_node(&self) -> NetNode {
        NetNode(0)
    }

    /// The backup controller's network node, if one is configured. It
    /// sits past the clients in the node numbering. Node numbering counts
    /// *total* cub machines (striped plus spare) so nothing shifts when
    /// spares join the stripe at a restripe cut-over.
    pub fn backup_controller_node(&self) -> Option<NetNode> {
        self.cfg
            .backup_controller
            .then(|| NetNode(1 + self.cfg.total_cubs() + self.cfg.num_clients))
    }

    /// Sends a controller-bound notice to the primary and, when a backup
    /// is configured, mirrors it there (state replication).
    pub fn send_to_controllers(&mut self, now: SimTime, src: NetNode, msg: Message) {
        let primary = self.controller_node();
        self.send_control(now, src, primary, msg.clone());
        if let Some(backup) = self.backup_controller_node() {
            self.send_control(now, src, backup, msg);
        }
    }

    /// The network node of `cub`.
    pub fn cub_node(&self, cub: CubId) -> NetNode {
        NetNode(1 + cub.raw())
    }

    /// The network node of client machine `client` (0-based).
    pub fn client_node(&self, client: u32) -> NetNode {
        NetNode(1 + self.cfg.total_cubs() + client)
    }

    /// Sends a control message and schedules its delivery event.
    pub fn send_control(&mut self, now: SimTime, src: NetNode, dst: NetNode, msg: Message) {
        let at = self.net.send_control(now, src, dst, msg.control_bytes());
        if self.net.has_fault_injections() {
            for inj in self.net.take_fault_injections() {
                if let NetInjectionKind::Duplicated { second_delivery } = inj.kind {
                    self.queue.schedule(
                        second_delivery,
                        Event::Deliver {
                            dst,
                            msg: msg.clone(),
                        },
                    );
                }
                self.record_net_injection(now, &inj);
            }
        }
        if let Some(at) = at {
            self.queue.schedule(at, Event::Deliver { dst, msg });
        }
    }

    /// Bytes of a block stored in the home disk's primary region: the
    /// whole block under mirroring, one shard under the coded backend.
    pub fn primary_extent(&self, block_size: ByteSize) -> ByteSize {
        match &self.coded {
            Some(c) => c.placement.shard_size(block_size),
            None => block_size,
        }
    }

    /// The secondary pieces of a block homed on `home`, per the active
    /// redundancy backend.
    pub fn secondary_pieces(&self, home: DiskId, block_size: ByteSize) -> Vec<MirrorPiece> {
        match &self.coded {
            Some(c) => c.placement.secondary_pieces(home, block_size),
            None => self.placement.pieces_for(home, block_size),
        }
    }

    /// Trace cub id for a fault event on network node `node`: cubs record
    /// on their own lane, everything else (controllers, clients) on CTRL.
    fn fault_lane(&self, node: u32) -> u32 {
        let cubs = self.cfg.total_cubs();
        if node >= 1 && node <= cubs {
            node - 1
        } else {
            CTRL
        }
    }

    fn record_net_injection(&mut self, now: SimTime, inj: &NetInjection) {
        let lane = self.fault_lane(inj.src);
        let ev = match inj.kind {
            NetInjectionKind::Dropped { partition } => TraceEvent::NetDrop {
                src: inj.src,
                dst: inj.dst,
                partition,
            },
            NetInjectionKind::Delayed { extra } => TraceEvent::NetDelay {
                src: inj.src,
                dst: inj.dst,
                extra_ns: extra.as_nanos(),
            },
            NetInjectionKind::Duplicated { .. } => TraceEvent::NetDup {
                src: inj.src,
                dst: inj.dst,
            },
        };
        self.tracer.record(now, lane, ev);
    }

    /// Drains and traces data-plane injections after a
    /// [`tiger_net::Network::send_data`] call (cub send path). The data
    /// plane never duplicates, so only drops and delays can appear here.
    pub fn trace_net_injections(&mut self, now: SimTime) {
        if self.net.has_fault_injections() {
            for inj in self.net.take_fault_injections() {
                debug_assert!(
                    !matches!(inj.kind, NetInjectionKind::Duplicated { .. }),
                    "send_data must never duplicate"
                );
                self.record_net_injection(now, &inj);
            }
        }
    }
}

/// The whole simulated Tiger system.
#[derive(Debug)]
pub struct TigerSystem {
    shared: Shared,
    cubs: Vec<Cub>,
    controller: Controller,
    clients: Vec<Client>,
    cpu: CpuModel,
    /// The controller's failure beliefs (for routing around dead cubs) —
    /// the same sans-io [`Membership`] vector the cubs' ring machines use.
    controller_believes_failed: Membership,
    /// Hot-standby controller state, mirrored from the cubs' notices.
    backup: Controller,
    /// Where clients currently address controller requests.
    active_controller: NetNode,
    /// Whether the backup has taken over.
    promoted: bool,
    next_viewer: u64,
    clients_handed: u32,
    window_start: SimTime,
    /// When each cub's next *periodic* forward pass is due (extra one-shot
    /// passes triggered by fresh inserts do not reschedule).
    periodic_forward_due: Vec<SimTime>,
    /// An in-progress live restripe, if one is executing.
    restripe: Option<crate::restripe::LiveRestripe>,
    /// The geometry delta the restripe currently executing (or armed to
    /// start) applies at its cut-over.
    restripe_step: Option<RestripeStep>,
    /// Queued follow-on restripe steps, executed in order: each starts at
    /// the previous step's cut-over (or at its own armed start time,
    /// whichever is later).
    restripe_queue: std::collections::VecDeque<RestripeStep>,
    /// How many [`Event::RestripeStart`] instants have fired while an
    /// earlier step was still executing: each arms the next queued step
    /// to begin at that step's cut-over.
    restripe_armed: usize,
    /// Background spare-shield copy pipeline (None when idle).
    shield_exec: Option<crate::shield::ShieldExec>,
    /// Striped cubs already shielded in the current geometry epoch (the
    /// campaign runs once per failure declaration; cleared at cut-over).
    shield_done: std::collections::HashSet<CubId>,
    /// Spares currently holding shield copies (one campaign per spare).
    shield_spares_used: std::collections::HashSet<CubId>,
}

/// One queued restripe step: the membership delta applied at its
/// cut-over. Exactly one of `add`/`remove` is nonzero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestripeStep {
    /// Spares absorbed into the stripe.
    pub add: u32,
    /// Trailing stripe members drained and fenced out (they rejoin the
    /// spare pool).
    pub remove: u32,
}

impl TigerSystem {
    /// Builds an idle system (no content, no viewers) from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TigerConfig::validate`]).
    pub fn new(cfg: TigerConfig) -> Self {
        cfg.validate();
        let params = ScheduleParams::derive(
            cfg.stripe,
            cfg.block_play_time,
            cfg.block_size(),
            cfg.disk_worst_read(),
            cfg.nic_capacity,
        )
        .with_scheduling_lead(cfg.scheduling_lead)
        .with_ownership_duration(cfg.ownership_duration);
        let catalog = FileCatalog::new(
            cfg.stripe,
            cfg.block_play_time,
            cfg.max_bitrate,
            BitrateMode::Single,
        );
        let rng = RngTree::new(cfg.seed);
        let total_cubs = cfg.total_cubs();
        let nodes = 1 + total_cubs + cfg.num_clients + u32::from(cfg.backup_controller);
        let net = Network::new(nodes, cfg.nic_capacity, cfg.latency, rng.fork("net", 0));
        let mut cubs = Vec::with_capacity(total_cubs as usize);
        for c in 0..total_cubs {
            let disks: Vec<Disk> = (0..cfg.stripe.disks_per_cub)
                .map(|l| {
                    Disk::new(
                        cfg.disk.clone(),
                        rng.fork("disk", u64::from(c) * 1000 + u64::from(l)),
                    )
                })
                .collect();
            let mut cub = Cub::new(CubId(c), total_cubs, disks);
            // Spares are powered machines with live disks (they receive
            // moved blocks during a live restripe) but not ring members:
            // they run no protocol work until the cut-over activates them,
            // and every ring member starts out believing them failed.
            if c >= cfg.stripe.num_cubs {
                cub.failed = true;
            }
            cubs.push(cub);
        }
        for cub in &mut cubs {
            for s in cfg.stripe.num_cubs..total_cubs {
                cub.mark_believed_failed(CubId(s));
            }
        }
        let clients = (0..cfg.num_clients).map(|_| Client::new()).collect();
        let placement = MirrorPlacement::new(cfg.stripe);
        let coded = (cfg.redundancy == RedundancyMode::Coded)
            .then(|| CodedRuntime::new(cfg.stripe, cfg.block_play_time));
        let num_cubs = total_cubs;
        let cfg_striped = cfg.stripe.num_cubs;
        // Pre-size the event queue for a full-load steady state so long
        // ramps never regrow the heap mid-run: each active stream keeps a
        // handful of events in flight (read issue/done, send due/done,
        // delivery), plus per-node periodic work and driver-queued starts.
        let queue_hint = params.capacity() as usize * 8 + nodes as usize * 4 + 128;
        let mut sys = TigerSystem {
            shared: Shared {
                cfg,
                params,
                catalog,
                placement,
                queue: EventQueue::with_capacity(queue_hint),
                net,
                metrics: Metrics::new(),
                omniscient: None,
                tracer: Tracer::from_env(),
                faults: ProcFaults::disabled(),
                coded,
                shield: crate::shield::ShieldMap::default(),
            },
            cubs,
            controller: Controller::new(),
            clients,
            cpu: CpuModel::pentium133(),
            // The controller, too, routes around spares until cut-over.
            controller_believes_failed: Membership::with_spares(num_cubs, cfg_striped),
            backup: Controller::new(),
            active_controller: NetNode(0),
            promoted: false,
            next_viewer: 0,
            clients_handed: 0,
            window_start: SimTime::ZERO,
            periodic_forward_due: vec![SimTime::ZERO; num_cubs as usize],
            restripe: None,
            restripe_step: None,
            restripe_queue: std::collections::VecDeque::new(),
            restripe_armed: 0,
            shield_exec: None,
            shield_done: std::collections::HashSet::new(),
            shield_spares_used: std::collections::HashSet::new(),
        };
        sys.schedule_periodic_events();
        sys
    }

    /// Enables the omniscient hallucination checker; tests use this to
    /// verify every cub action against the materialized global schedule.
    ///
    /// The in-flight grace window covers the maximum viewer-state lead plus
    /// one block play time: an end-of-file notice (and hence the checker's
    /// removal) can run that far ahead of the stream's final block send.
    pub fn enable_omniscient(&mut self) {
        let grace = self.shared.cfg.max_vstate_lead
            + self.shared.cfg.block_play_time
            + SimDuration::from_millis(500);
        self.shared.omniscient =
            Some(Omniscient::new(self.shared.params.clone()).with_grace(grace));
    }

    /// Turns on protocol tracing with a ring of `cap` events,
    /// irrespective of the environment. Tests use this instead of setting
    /// `TIGER_TRACE` (the test suite runs multithreaded, and process
    /// environment mutations race across tests).
    pub fn enable_trace(&mut self, cap: usize) {
        self.shared.tracer = Tracer::enabled(cap);
    }

    /// The tracer (read-only; tests assert on its records).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Runs `f` with direct mutable access to one cub and the shared
    /// state. Test support: the deadman edge-case tests drive individual
    /// handlers (`on_deadman_check` at an exact instant) without steering
    /// the whole event loop there.
    pub fn with_cub_mut<R>(&mut self, cub: CubId, f: impl FnOnce(&mut Cub, &mut Shared) -> R) -> R {
        f(&mut self.cubs[cub.index()], &mut self.shared)
    }

    fn schedule_periodic_events(&mut self) {
        let cfg = &self.shared.cfg;
        let n = u64::from(cfg.stripe.num_cubs);
        for c in 0..cfg.stripe.num_cubs {
            // Stagger periodic work across cubs so the simulation does not
            // synchronize artificial load spikes.
            let offset =
                SimDuration::from_nanos(cfg.forward_interval.as_nanos() * u64::from(c) / n);
            self.shared.queue.schedule(
                SimTime::ZERO + cfg.forward_interval + offset,
                Event::ForwardPass { cub: CubId(c) },
            );
            let ping_offset =
                SimDuration::from_nanos(cfg.deadman_interval.as_nanos() * u64::from(c) / n);
            self.shared.queue.schedule(
                SimTime::ZERO + ping_offset + SimDuration::from_millis(1),
                Event::DeadmanPing { cub: CubId(c) },
            );
            self.shared.queue.schedule(
                SimTime::ZERO + cfg.deadman_timeout + ping_offset,
                Event::DeadmanCheck { cub: CubId(c) },
            );
        }
    }

    // --- Content loading ---------------------------------------------------

    /// Adds a file of `bitrate` and `duration`, laying its primary blocks
    /// and declustered mirror pieces out across every disk (§2.2–§2.3).
    pub fn add_file(&mut self, bitrate: Bandwidth, duration: SimDuration) -> FileId {
        let file = self.shared.catalog.add_file(bitrate, duration);
        let meta = *self.shared.catalog.get(file).expect("just added");
        let stripe = self.shared.params.stripe();
        for b in 0..meta.num_blocks {
            let loc = self
                .shared
                .catalog
                .locate(file, BlockNum(b))
                .expect("in range");
            let local = stripe.local_index_of(loc.disk);
            self.cubs[loc.cub.index()].load_primary(
                loc.disk,
                local,
                file,
                BlockNum(b),
                self.shared.primary_extent(meta.block_size),
            );
            for piece in self.shared.secondary_pieces(loc.disk, meta.block_size) {
                let pcub = stripe.cub_of(piece.disk);
                let plocal = stripe.local_index_of(piece.disk);
                self.cubs[pcub.index()].load_secondary(
                    piece.disk,
                    plocal,
                    file,
                    BlockNum(b),
                    piece.piece,
                    piece.size,
                );
            }
        }
        file
    }

    /// Hands out a client machine index (round-robin over the
    /// `TigerConfig::num_clients` pre-allocated client machines).
    pub fn add_client(&mut self) -> u32 {
        let idx = self.clients_handed % self.shared.cfg.num_clients;
        self.clients_handed += 1;
        idx
    }

    // --- Workload API --------------------------------------------------------

    /// Schedules a start request from `client` for `file` at time `at`.
    /// Returns the viewer instance that will be used.
    pub fn request_start(&mut self, at: SimTime, client: u32, file: FileId) -> ViewerInstance {
        self.request_start_at(at, client, file, 0)
    }

    /// Schedules a start request beginning at `from_block` (VCR semantics:
    /// a resume or a chapter jump starts mid-file).
    pub fn request_start_at(
        &mut self,
        at: SimTime,
        client: u32,
        file: FileId,
        from_block: u32,
    ) -> ViewerInstance {
        assert!(client < self.shared.cfg.num_clients, "unknown client");
        let instance = ViewerInstance {
            viewer: ViewerId(self.next_viewer),
            incarnation: 0,
        };
        self.next_viewer += 1;
        self.shared.queue.schedule(
            at,
            Event::ClientStart {
                client,
                file,
                from_block,
                instance,
            },
        );
        instance
    }

    /// Schedules a stop request for `instance` at time `at`.
    pub fn request_stop(&mut self, at: SimTime, instance: ViewerInstance) {
        self.shared
            .queue
            .schedule(at, Event::ClientStop { instance });
    }

    /// Schedules a pause: the viewer leaves the schedule (a deschedule),
    /// but the client remembers how far it got so a later
    /// [`TigerSystem::request_resume`] can pick up from there.
    pub fn request_pause(&mut self, at: SimTime, instance: ViewerInstance) {
        self.request_stop(at, instance);
    }

    /// Schedules a resume of a paused viewer: a fresh play instance (the
    /// incarnation number bumps, so stale deschedules cannot kill it,
    /// §4.1.2) starting at the first block the paused instance did not
    /// receive. Returns the resumed instance.
    pub fn request_resume(&mut self, at: SimTime, instance: ViewerInstance) -> ViewerInstance {
        self.shared
            .queue
            .schedule(at, Event::ClientResume { instance });
        ViewerInstance {
            viewer: instance.viewer,
            incarnation: instance.incarnation + 1,
        }
    }

    /// Schedules a seek: stop the current play instance and start a new
    /// incarnation at `to_block`. Returns the new instance.
    pub fn request_seek(
        &mut self,
        at: SimTime,
        instance: ViewerInstance,
        to_block: u32,
    ) -> ViewerInstance {
        self.shared
            .queue
            .schedule(at, Event::ClientSeek { instance, to_block });
        ViewerInstance {
            viewer: instance.viewer,
            incarnation: instance.incarnation + 1,
        }
    }

    /// Schedules a power-cut of `cub` at time `at`.
    pub fn fail_cub_at(&mut self, at: SimTime, cub: CubId) {
        self.shared.queue.schedule(at, Event::FailCub { cub });
    }

    /// Schedules a controller-attributed trace annotation at `at` —
    /// experiment drivers use this to drop timeline markers (e.g. a
    /// workload plan's flash-crowd onset) into the same ring buffer the
    /// protocol events land in, so churn can be correlated against its
    /// cause in one dump. A no-op unless tracing is enabled.
    pub fn trace_note_at(&mut self, at: SimTime, ev: TraceEvent) {
        self.shared
            .queue
            .schedule(at, Event::FaultNote { cub: CTRL, ev });
    }

    /// Compiles and installs a declarative fault plan (see
    /// [`tiger_faults::FaultPlan`]): network injectors on the switch, disk
    /// injectors on each targeted drive, freeze windows on the event loop,
    /// and one-shot faults (crashes, power-domain cuts, disk deaths) as
    /// scheduled events. Fault randomness draws from a dedicated
    /// `"faults"` RNG subtree, so an empty plan leaves the run
    /// byte-identical and a fixed plan perturbs nothing but itself.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        // The topology counts total cub machines (striped + spare): node
        // numbering places clients after every cub machine, and fault
        // selectors must resolve to the same nodes the system uses.
        let num_cubs = self.shared.cfg.total_cubs();
        let disks_per_cub = self.shared.cfg.stripe.disks_per_cub;
        let topo = Topology {
            num_cubs,
            num_clients: self.shared.cfg.num_clients,
            backup_controller: self.shared.cfg.backup_controller,
        };
        let tree = RngTree::new(self.shared.cfg.seed).subtree("faults", 0);
        let net_faults = NetFaults::compile(plan, topo, tree.fork("net", 0));
        if net_faults.active() {
            self.shared.net.set_faults(net_faults);
        }
        for c in 0..num_cubs {
            for l in 0..disks_per_cub {
                let df = DiskFaults::compile(
                    plan,
                    c,
                    l,
                    tree.fork("disk", u64::from(c) * 1000 + u64::from(l)),
                );
                if df.active() {
                    self.cubs[c as usize].disks_mut()[l as usize].set_faults(df);
                }
            }
        }
        self.shared.faults = ProcFaults::compile(plan);
        for pf in &plan.process {
            match pf {
                ProcessFault::Crash { cub, at } => self.fail_cub_at(*at, CubId(*cub)),
                ProcessFault::PowerDomain { cubs, at } => {
                    // One physical power domain: every cub on it dies at
                    // the same instant (correlated, not independent).
                    for &c in cubs {
                        self.fail_cub_at(*at, CubId(c));
                    }
                }
                ProcessFault::Freeze { cub, from, until } => {
                    self.shared.queue.schedule(
                        *from,
                        Event::FaultNote {
                            cub: *cub,
                            ev: TraceEvent::CubFreeze { cub: *cub },
                        },
                    );
                    self.shared.queue.schedule(
                        *until,
                        Event::FaultNote {
                            cub: *cub,
                            ev: TraceEvent::CubResume { cub: *cub },
                        },
                    );
                }
                ProcessFault::Restart { cub, at } => {
                    self.shared
                        .queue
                        .schedule(*at, Event::RestartCub { cub: CubId(*cub) });
                }
            }
        }
        for decl in &plan.restripes {
            self.enqueue_restripe(decl.at, decl.add_cubs, decl.remove_cubs);
        }
        for df in &plan.disks {
            if let DiskFaultKind::Death { at } = df.kind {
                self.shared.queue.schedule(
                    at,
                    Event::FailDisk {
                        cub: CubId(df.cub),
                        disk_local: df.disk,
                    },
                );
            }
        }
        for w in plan.windows() {
            self.shared.queue.schedule(
                w.from,
                Event::FaultNote {
                    cub: CTRL,
                    ev: TraceEvent::FaultStart { clause: w.clause },
                },
            );
            if w.until < SimTime::MAX {
                self.shared.queue.schedule(
                    w.until,
                    Event::FaultNote {
                        cub: CTRL,
                        ev: TraceEvent::FaultEnd { clause: w.clause },
                    },
                );
            }
        }
    }

    /// Invariant check: no living cub's schedule view runs further ahead
    /// of real time than `maxVStateLead` allows (§3.3), plus one slack
    /// term for the declustered mirror fan-out (a failure forwards mirror
    /// entries up to `decluster + 1` slots ahead of the primary's time).
    /// Returns violation strings (empty = pass). On rings short enough
    /// that the legitimate lead wraps the whole schedule the check is
    /// vacuous and reports nothing.
    pub fn check_view_lead(&self) -> Vec<String> {
        let now = self.shared.queue.now();
        let params = &self.shared.params;
        let stripe = params.stripe();
        let bpt = params.block_play_time();
        let max_lead =
            self.shared.cfg.max_vstate_lead + bpt.mul_u64(u64::from(stripe.decluster) + 1);
        if max_lead >= params.schedule_len() {
            return Vec::new();
        }
        let mut violations = Vec::new();
        for cub in &self.cubs {
            if cub.failed {
                continue;
            }
            for (slot, entry) in cub.view().iter() {
                // A just-serviced entry awaiting the retirement pass
                // measures a whole lap ahead; only entries still waiting
                // for their service count against the lead.
                if cub.already_served(entry) {
                    continue;
                }
                // The entry is due when the earliest of this cub's disks
                // next meets the slot.
                let lead = (0..stripe.disks_per_cub)
                    .map(|l| {
                        let disk = stripe.disk_of(cub.id, l);
                        params.slot_send_time(disk, slot, now).saturating_since(now)
                    })
                    .min()
                    .unwrap_or(SimDuration::ZERO);
                if lead > max_lead {
                    violations.push(format!(
                        "{}: view entry for slot {} (viewer {}) leads by {lead:?} > \
                         {max_lead:?} at {now}",
                        cub.id,
                        slot.raw(),
                        entry.instance.viewer.raw(),
                    ));
                }
            }
        }
        violations
    }

    /// Schedules a power-cut of the primary controller at time `at`. With
    /// a backup controller configured, the backup promotes itself after
    /// the failover timeout; without one, running streams continue
    /// unaffected but no new viewer can start or stop (the paper's §2.3
    /// single-point-of-failure caveat).
    pub fn fail_controller_at(&mut self, at: SimTime) {
        self.shared.queue.schedule(at, Event::FailController);
    }

    // --- Online recovery -----------------------------------------------------

    /// Schedules a restart of a crashed/fenced cub at time `at`: it comes
    /// back with empty schedule state and re-learns its slots via the
    /// rejoin protocol.
    pub fn restart_cub_at(&mut self, at: SimTime, cub: CubId) {
        self.shared.queue.schedule(at, Event::RestartCub { cub });
    }

    /// Schedules a live restripe at time `at` that absorbs `add_cubs` of
    /// the provisioned spares into the stripe. The moves execute as
    /// background work inside the event loop; when the last block lands,
    /// the system cuts over to the new geometry and re-inserts every
    /// running viewer. Steps queue: a request issued while an earlier
    /// step is still executing arms the next step to begin at that
    /// step's cut-over.
    ///
    /// # Panics
    ///
    /// Panics if the step is invalid against the membership projected
    /// through every step already accepted (see `enqueue_restripe`).
    pub fn request_restripe(&mut self, at: SimTime, add_cubs: u32) {
        self.enqueue_restripe(at, add_cubs, 0);
    }

    /// Schedules a live *shrink* at time `at`: the last `remove_cubs`
    /// stripe members drain their primaries to the survivors through the
    /// background mirror lane, then are fenced out of the ring at the
    /// cut-over and rejoin the spare pool.
    ///
    /// # Panics
    ///
    /// Panics if the step is invalid (see `enqueue_restripe`).
    pub fn request_restripe_remove(&mut self, at: SimTime, remove_cubs: u32) {
        self.enqueue_restripe(at, 0, remove_cubs);
    }

    /// Queues one restripe step (grow or shrink; both-zero is a legal
    /// no-op step that cuts over immediately), validating it against the
    /// membership *projected* through every previously accepted step.
    ///
    /// # Panics
    ///
    /// Panics if both of `add`/`remove` are nonzero, if a grow exceeds
    /// the projected spare pool, or if a shrink would not leave at least
    /// one striped cub.
    pub fn enqueue_restripe(&mut self, at: SimTime, add: u32, remove: u32) {
        assert!(
            add == 0 || remove == 0,
            "a restripe step adds or removes cubs, not both (add={add}, remove={remove})"
        );
        // Project membership through the executing step and the queue.
        let mut striped = self.shared.cfg.stripe.num_cubs;
        let mut spares = self.shared.cfg.spare_cubs;
        for step in self.restripe_step.iter().chain(self.restripe_queue.iter()) {
            striped = striped + step.add - step.remove;
            spares = spares - step.add + step.remove;
        }
        assert!(
            add <= spares,
            "restripe adds {add} cubs but only {spares} spares are (projected) provisioned"
        );
        assert!(
            remove < striped,
            "restripe removes {remove} of {striped} (projected) striped cubs; at least one must remain"
        );
        self.restripe_queue.push_back(RestripeStep { add, remove });
        self.shared.queue.schedule(at, Event::RestripeStart);
    }

    /// Handles [`Event::RestartCub`]: revive the machine with empty
    /// schedule state, announce the rejoin, and resume periodic work
    /// under a fresh monitoring baseline.
    fn restart_cub(&mut self, now: SimTime, cub: CubId) {
        let striped = self.shared.cfg.stripe.num_cubs;
        if cub.raw() >= striped {
            return; // Spares join via a restripe cut-over, not a rejoin.
        }
        if !self.cubs[cub.index()].failed {
            return; // Never crashed, or already restarted.
        }
        self.shared
            .tracer
            .record(now, CTRL, TraceEvent::CubRestart { cub: cub.raw() });
        let node = self.shared.cub_node(cub);
        self.shared.net.revive_node(now, node);
        self.cubs[cub.index()].restart(now, striped);
        // Announce the rejoin to every striped cub and the controllers:
        // receivers clear their failure belief and re-baseline deadman
        // monitoring; ring neighbours answer with their own belief lists
        // (bounded-view exchange) and the covering mirror partner opens
        // its hand-back window.
        for c in 0..striped {
            if c != cub.raw() {
                let dst = self.shared.cub_node(CubId(c));
                self.shared
                    .send_control(now, node, dst, Message::RejoinRequest { from: cub });
            }
        }
        self.shared
            .send_to_controllers(now, node, Message::RejoinRequest { from: cub });
        // Restart periodic work. The deadman check fires one full timeout
        // out, and `restart` reset every last-heard clock to `now`, so the
        // fresh baseline can never declare a predecessor on stale silence.
        let next_fwd = now + self.shared.cfg.forward_interval;
        self.periodic_forward_due[cub.index()] = next_fwd;
        self.cubs[cub.index()].next_forward_pass = next_fwd;
        self.shared
            .queue
            .schedule(next_fwd, Event::ForwardPass { cub });
        self.shared.queue.schedule(
            now + self.shared.cfg.deadman_interval,
            Event::DeadmanPing { cub },
        );
        self.shared.queue.schedule(
            now + self.shared.cfg.deadman_timeout,
            Event::DeadmanCheck { cub },
        );
    }

    /// Handles [`Event::RestripeStart`]: pop the next queued step and
    /// start its background pipeline — or, if an earlier step is still
    /// executing, arm the step to begin at that step's cut-over.
    fn restripe_start(&mut self, now: SimTime) {
        if self.restripe_step.is_some() {
            // Busy: remember that this step's start time has passed so
            // the cut-over launches it immediately.
            self.restripe_armed += 1;
            return;
        }
        let Some(step) = self.restripe_queue.pop_front() else {
            return;
        };
        self.restripe_step = Some(step);
        self.begin_restripe(now, step);
    }

    /// Plans and launches one restripe step's background move pipeline.
    fn begin_restripe(&mut self, now: SimTime, step: RestripeStep) {
        let old = self.shared.cfg.stripe;
        let new = tiger_layout::StripeConfig::new(
            old.num_cubs + step.add - step.remove,
            old.disks_per_cub,
            old.decluster,
        );
        let plan = tiger_layout::RestripePlan::plan(&self.shared.catalog, old, new);
        self.shared.tracer.record(
            now,
            CTRL,
            TraceEvent::RestripeStart {
                moves: plan.moves().len() as u32,
            },
        );
        self.restripe = Some(crate::restripe::LiveRestripe::new(plan, now));
        if self.restripe.as_ref().is_some_and(|lr| lr.pending() == 0) {
            self.restripe_cutover(now);
        } else {
            self.with_restripe(now, |lr, sh, cubs| lr.pump(sh, cubs, now));
            self.shared
                .queue
                .schedule(now + SimDuration::from_millis(100), Event::RestripeTick);
        }
    }

    /// The live-restripe cut-over barrier: every moved block has landed,
    /// so swap the system to the new geometry in one event. Running
    /// viewers are carried across by re-insertion — their old-incarnation
    /// records are fenced with deschedules and a fresh incarnation starts
    /// at each viewer's high-water mark, so no block is played twice and
    /// at most the in-flight window is re-requested.
    fn restripe_cutover(&mut self, now: SimTime) {
        let Some(lr) = self.restripe.take() else {
            return;
        };
        self.restripe_step = None;
        let plan = lr.into_plan();
        let old = plan.old_config();
        let new = plan.new_config();
        self.shared.tracer.record(
            now,
            CTRL,
            TraceEvent::RestripeCutover {
                moved: plan.moves().len() as u32,
            },
        );
        // 1. Collect the live viewers (deterministically: clients in index
        // order, instances sorted) before any state is torn down.
        let mut live: Vec<(u32, ViewerInstance, FileId, u32)> = Vec::new();
        for ci in 0..self.clients.len() as u32 {
            let mut here: Vec<(u32, ViewerInstance, FileId, u32)> = self.clients[ci as usize]
                .viewers()
                .filter(|(_, v)| !v.stopped && !v.complete())
                .map(|(&inst, v)| {
                    let resume = v.high_water.map_or(v.base_block, |h| h + 1);
                    (ci, inst, v.file, resume)
                })
                .collect();
            here.sort_by_key(|&(_, inst, _, _)| (inst.viewer.raw(), inst.incarnation));
            live.extend(here);
        }
        // 2. Fence the old incarnations: deschedules (slot from the
        // controller's commit record) block any old-geometry record still
        // in flight from re-entering a view after the swap.
        let fences: Vec<Deschedule> = live
            .iter()
            .filter_map(|&(_, inst, _, _)| {
                let rec = self
                    .controller
                    .viewer(&inst)
                    .or_else(|| self.backup.viewer(&inst))?;
                rec.slot.map(|slot| Deschedule {
                    instance: inst,
                    slot,
                })
            })
            .collect();
        let hold_until = now + self.shared.cfg.deschedule_hold + self.shared.cfg.max_vstate_lead;
        for &(ci, inst, _, _) in &live {
            self.controller.on_viewer_finished(inst);
            self.backup.on_viewer_finished(inst);
            self.clients[ci as usize].on_stopped(inst);
        }
        for cub in &mut self.cubs {
            cub.cutover_reset(now, &fences, hold_until);
        }
        // 3. Swap the geometry: config, derived parameters, catalog
        // start-disks, mirror placement. Absorbed spares leave the spare
        // pool; shrunk-out members rejoin it.
        self.shared.cfg.stripe = new;
        if new.num_cubs >= old.num_cubs {
            self.shared.cfg.spare_cubs -= new.num_cubs - old.num_cubs;
        } else {
            self.shared.cfg.spare_cubs += old.num_cubs - new.num_cubs;
        }
        self.shared.params = ScheduleParams::derive(
            new,
            self.shared.cfg.block_play_time,
            self.shared.cfg.block_size(),
            self.shared.cfg.disk_worst_read(),
            self.shared.cfg.nic_capacity,
        )
        .with_scheduling_lead(self.shared.cfg.scheduling_lead)
        .with_ownership_duration(self.shared.cfg.ownership_duration);
        self.shared.catalog.restripe(new);
        self.shared.placement = MirrorPlacement::new(new);
        if self.shared.coded.is_some() {
            // Fresh rings: cut-over re-inserts every carried viewer, so
            // stale load reservations must not leak into the new geometry.
            self.shared.coded = Some(CodedRuntime::new(new, self.shared.cfg.block_play_time));
        }
        // 4. Layout: drop the source entries of every moved block (the
        // copy already landed at its destination during the background
        // phase) and re-derive the mirror layout wholesale.
        for mv in plan.moves() {
            let src = old.cub_of(mv.from);
            self.cubs[src.index()].remove_primary_entry(mv.from, mv.file, mv.block);
        }
        self.relay_secondaries();
        // 5. Ring: activate the absorbed spares (their disks were live all
        // along) / fence out the shrunk members (their disks and NICs
        // stay alive — they are spares again, with emptied primaries) and
        // distribute the ground-truth membership map — the restriper's
        // cut-over barrier is the one moment it is known.
        for j in old.num_cubs..new.num_cubs {
            self.cubs[j as usize].failed = false;
        }
        for j in new.num_cubs..old.num_cubs {
            self.cubs[j as usize].failed = true;
            self.shared
                .tracer
                .record(now, CTRL, TraceEvent::ShrinkFence { cub: j });
        }
        let failed_map: Vec<bool> = self.cubs.iter().map(|c| c.failed).collect();
        for cub in &mut self.cubs {
            cub.set_ring_state(&failed_map, now);
        }
        self.controller_believes_failed.reset_from(&failed_map);
        for j in old.num_cubs..new.num_cubs {
            let cub = CubId(j);
            let next_fwd = now + self.shared.cfg.forward_interval;
            self.periodic_forward_due[j as usize] = next_fwd;
            self.cubs[j as usize].next_forward_pass = next_fwd;
            self.shared
                .queue
                .schedule(next_fwd, Event::ForwardPass { cub });
            self.shared.queue.schedule(
                now + self.shared.cfg.deadman_interval,
                Event::DeadmanPing { cub },
            );
            self.shared.queue.schedule(
                now + self.shared.cfg.deadman_timeout,
                Event::DeadmanCheck { cub },
            );
        }
        // 6. The omniscient checker's materialized schedule is keyed to
        // the old geometry; rebuild it fresh (with its insertion grace).
        if self.shared.omniscient.is_some() {
            self.enable_omniscient();
        }
        // 7. Re-insert every carried viewer as a fresh incarnation at its
        // high-water mark (a normal start request through the controller).
        for (ci, inst, file, resume) in live {
            let renewed = ViewerInstance {
                viewer: inst.viewer,
                incarnation: inst.incarnation + 1,
            };
            self.on_client_start(now, ci, file, resume, renewed);
        }
        // 8. Shield copies rode the secondary layout `relay_secondaries`
        // just rebuilt: the permanent mirror geometry has absorbed the
        // exposure, so the interim shield evaporates with it.
        self.shared.shield.clear();
        self.shield_exec = None;
        self.shield_done.clear();
        self.shield_spares_used.clear();
        // 9. Launch the next queued step if its start time already passed
        // while this step was executing.
        if self.restripe_armed > 0 {
            self.restripe_armed -= 1;
            self.restripe_start(now);
        }
    }

    /// Re-derives every cub's mirror (secondary) layout for the current
    /// stripe: the declustered pieces of each block, placed by the same
    /// rule content loading uses.
    fn relay_secondaries(&mut self) {
        for cub in &mut self.cubs {
            cub.clear_secondary_layout();
        }
        let stripe = self.shared.params.stripe();
        let files = self.shared.catalog.files().to_vec();
        for meta in files {
            for b in 0..meta.num_blocks {
                let loc = self
                    .shared
                    .catalog
                    .locate(meta.id, BlockNum(b))
                    .expect("in range");
                for piece in self.shared.secondary_pieces(loc.disk, meta.block_size) {
                    let pcub = stripe.cub_of(piece.disk);
                    let plocal = stripe.local_index_of(piece.disk);
                    self.cubs[pcub.index()].load_secondary(
                        piece.disk,
                        plocal,
                        meta.id,
                        BlockNum(b),
                        piece.piece,
                        piece.size,
                    );
                }
            }
        }
    }

    // --- Spare shield --------------------------------------------------------

    /// A cub was first declared failed: if the shield is enabled and a
    /// free spare exists, start background-copying the mirror pieces
    /// shadowing the failed cub's disks (the now most-exposed decluster
    /// spans) onto the spare, which serves them if a second failure lands
    /// before the restripe cut-over rebuilds permanent redundancy.
    fn maybe_shield(&mut self, now: SimTime, failed: CubId) {
        let stripe = self.shared.cfg.stripe;
        if !self.shared.cfg.spare_shield
            || self.shared.cfg.redundancy != RedundancyMode::Mirrored
            || failed.raw() >= stripe.num_cubs
            || !self.shield_done.insert(failed)
        {
            return;
        }
        // Lowest free spare: powered, not a stripe member, not already
        // holding another campaign's copies.
        let total = self.shared.cfg.total_cubs();
        let Some(spare) = (stripe.num_cubs..total).map(CubId).find(|&s| {
            self.cubs[s.index()].failed
                && !self.shield_spares_used.contains(&s)
                && self.cubs[s.index()].disks().iter().all(|d| !d.is_failed())
        }) else {
            self.shield_done.remove(&failed);
            return; // No spare free; a later declaration may find one.
        };
        // Build the copy list: for every block homed on a failed cub's
        // disk, each surviving holder's mirror piece (skipping holders
        // the controller already believes failed — those pieces are the
        // already-lost case the shield cannot help).
        let mut copies = Vec::new();
        let files = self.shared.catalog.files().to_vec();
        for l in 0..stripe.disks_per_cub {
            let home = stripe.disk_of(failed, l);
            for meta in &files {
                for b in 0..meta.num_blocks {
                    let loc = self
                        .shared
                        .catalog
                        .locate(meta.id, BlockNum(b))
                        .expect("in range");
                    if loc.disk != home {
                        continue;
                    }
                    for piece in self.shared.secondary_pieces(home, meta.block_size) {
                        let holder = stripe.cub_of(piece.disk);
                        if self.controller_believes_failed.is_failed(holder) {
                            continue;
                        }
                        copies.push(crate::shield::ShieldCopy {
                            src: piece.disk,
                            home,
                            home_local: l,
                            spare,
                            file: meta.id,
                            block: BlockNum(b),
                            piece: piece.piece,
                            size: piece.size,
                        });
                    }
                }
            }
        }
        if copies.is_empty() {
            self.shield_done.remove(&failed);
            return;
        }
        self.shield_spares_used.insert(spare);
        let was_idle = self.shield_exec.is_none();
        self.shield_exec
            .get_or_insert_with(|| crate::shield::ShieldExec::new(stripe, now))
            .extend(copies);
        self.with_shield(|se, sh, cubs| se.pump(sh, cubs, now));
        if was_idle && self.shield_exec.is_some() {
            self.shared
                .queue
                .schedule(now + SimDuration::from_millis(100), Event::ShieldTick);
        }
    }

    /// Handles [`Event::ShieldTick`]: pump the copy pipeline and re-arm
    /// while work remains.
    fn shield_tick(&mut self, now: SimTime) {
        self.with_shield(|se, sh, cubs| se.pump(sh, cubs, now));
        if self.shield_exec.is_some() {
            self.shared
                .queue
                .schedule(now + SimDuration::from_millis(100), Event::ShieldTick);
        }
    }

    /// Runs `f` against the in-progress shield pipeline (no-op if none),
    /// dropping it once every copy has landed.
    fn with_shield(
        &mut self,
        f: impl FnOnce(&mut crate::shield::ShieldExec, &mut Shared, &mut [Cub]),
    ) {
        let Some(mut se) = self.shield_exec.take() else {
            return;
        };
        f(&mut se, &mut self.shared, &mut self.cubs);
        if se.pending() > 0 {
            self.shield_exec = Some(se);
        }
    }

    /// A canonical digest of the primary block layout: every indexed
    /// `(file, block, disk)` triple, sorted. Two systems with byte-equal
    /// digests place every block identically — the live-restripe test
    /// compares against a statically restriped target.
    pub fn layout_digest(&self) -> String {
        let mut lines: Vec<String> = self
            .cubs
            .iter()
            .flat_map(|cub| {
                cub.index()
                    .primary_keys()
                    .map(|(disk, file, block)| {
                        format!("{:08} {:08} {:08}", file.raw(), block.raw(), disk.raw())
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    // --- Event loop ----------------------------------------------------------

    /// Runs the simulation until `horizon` (inclusive).
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some((now, event)) = self.shared.queue.pop_until(horizon) {
            self.dispatch(now, event);
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.queue.now()
    }

    fn dispatch(&mut self, now: SimTime, event: Event) {
        if self.shared.faults.active() {
            if let Some(cub) = self.frozen_target(&event) {
                if let Some(resume) = self.shared.faults.frozen_until(cub.raw(), now) {
                    // A frozen cub processes nothing: its events are parked
                    // until the resume instant. Arrival order is preserved
                    // (the queue breaks timestamp ties by insertion order),
                    // so a thaw replays the backlog in the original order.
                    self.shared.queue.schedule(resume, event);
                    return;
                }
            }
        }
        match event {
            Event::Deliver { dst, msg } => self.on_deliver(now, dst, msg),
            Event::ReadIssue { cub, token } => {
                self.cubs[cub.index()].on_read_issue(&mut self.shared, now, token);
            }
            Event::DiskDone { cub, token } => {
                self.cubs[cub.index()].on_disk_done(&mut self.shared, now, token);
            }
            Event::SendDue { cub, token } => {
                self.cubs[cub.index()].on_send_due(&mut self.shared, now, token);
            }
            Event::SendDone { cub, token } => {
                self.cubs[cub.index()].on_send_done(&mut self.shared, now, token);
            }
            Event::ForwardPass { cub } => {
                let c = &mut self.cubs[cub.index()];
                let was_periodic = self.periodic_forward_due[cub.index()] <= now;
                c.on_forward_pass(&mut self.shared, now);
                // Reschedule only the periodic pass (commit_insert schedules
                // extra one-shot passes that must not multiply).
                if was_periodic && !c.failed {
                    let next = now + self.shared.cfg.forward_interval;
                    self.periodic_forward_due[cub.index()] = next;
                    c.next_forward_pass = next;
                    self.shared.queue.schedule(next, Event::ForwardPass { cub });
                }
            }
            Event::InsertAttempt { cub } => {
                self.cubs[cub.index()].on_insert_attempt(&mut self.shared, now);
            }
            Event::DeadmanPing { cub } => {
                let c = &mut self.cubs[cub.index()];
                c.on_deadman_ping(&mut self.shared, now);
                if !c.failed {
                    self.shared
                        .queue
                        .schedule_in(self.shared.cfg.deadman_interval, Event::DeadmanPing { cub });
                }
            }
            Event::DeadmanCheck { cub } => {
                let c = &mut self.cubs[cub.index()];
                c.on_deadman_check(&mut self.shared, now);
                if !c.failed {
                    self.shared.queue.schedule_in(
                        self.shared.cfg.deadman_interval,
                        Event::DeadmanCheck { cub },
                    );
                }
            }
            Event::FailCub { cub } => {
                self.shared
                    .tracer
                    .record(now, CTRL, TraceEvent::PowerCut { cub: cub.raw() });
                self.cubs[cub.index()].power_cut(now);
                let node = self.shared.cub_node(cub);
                self.shared.net.fail_node(node);
            }
            Event::FailDisk { cub, disk_local } => {
                self.shared.tracer.record(
                    now,
                    CTRL,
                    TraceEvent::DiskDeath {
                        cub: cub.raw(),
                        disk: disk_local,
                    },
                );
                self.cubs[cub.index()].disks_mut()[disk_local as usize].fail(now);
            }
            Event::FaultNote { cub, ev } => {
                self.shared.tracer.record(now, cub, ev);
            }
            Event::FailController => {
                let node = self.shared.controller_node();
                self.shared.net.fail_node(node);
                if self.shared.cfg.backup_controller {
                    self.shared.queue.schedule_in(
                        self.shared.cfg.controller_failover_timeout,
                        Event::PromoteBackup,
                    );
                }
            }
            Event::PromoteBackup => {
                if !self.promoted {
                    self.promoted = true;
                    // The mirrored state becomes authoritative and clients
                    // are re-pointed at the backup's address.
                    self.controller = std::mem::take(&mut self.backup);
                    self.active_controller = self
                        .shared
                        .backup_controller_node()
                        .expect("promotion requires a configured backup");
                }
            }
            Event::ClientStart {
                client,
                file,
                from_block,
                instance,
            } => {
                self.on_client_start(now, client, file, from_block, instance);
            }
            Event::ClientStop { instance } => self.on_client_stop(now, instance),
            Event::ClientResume { instance } => self.on_client_resume(now, instance),
            Event::ClientSeek { instance, to_block } => {
                self.on_client_seek(now, instance, to_block);
            }
            Event::RestartCub { cub } => self.restart_cub(now, cub),
            Event::RestripeStart => self.restripe_start(now),
            Event::RestripeTick => {
                self.with_restripe(now, |lr, sh, cubs| lr.pump(sh, cubs, now));
                if self.restripe.is_some() {
                    self.shared
                        .queue
                        .schedule(now + SimDuration::from_millis(100), Event::RestripeTick);
                }
            }
            Event::RestripeRead { idx } => {
                self.with_restripe(now, |lr, sh, cubs| lr.on_read_done(sh, cubs, now, idx));
            }
            Event::RestripeArrive { idx } => {
                self.with_restripe(now, |lr, sh, cubs| lr.on_arrive(sh, cubs, now, idx));
            }
            Event::ShieldTick => self.shield_tick(now),
            Event::ShieldRead { idx } => {
                self.with_shield(|se, sh, cubs| se.on_read_done(sh, cubs, now, idx));
            }
            Event::ShieldArrive { idx } => {
                self.with_shield(|se, sh, cubs| se.on_arrive(sh, cubs, now, idx));
            }
        }
    }

    /// Runs `f` against the in-progress restripe (no-op if none), then
    /// cuts over if every move has landed.
    fn with_restripe(
        &mut self,
        now: SimTime,
        f: impl FnOnce(&mut crate::restripe::LiveRestripe, &mut Shared, &mut [Cub]),
    ) {
        let Some(mut lr) = self.restripe.take() else {
            return;
        };
        f(&mut lr, &mut self.shared, &mut self.cubs);
        let done = lr.pending() == 0;
        self.restripe = Some(lr);
        if done {
            self.restripe_cutover(now);
        }
    }

    /// The cub whose execution `event` represents, if freeze deferral
    /// applies. Fault-injection events are exempt (a power cut kills even
    /// a frozen cub), as is controller and client work: freezes model a
    /// stalled cub process, nothing else.
    fn frozen_target(&self, event: &Event) -> Option<CubId> {
        let num_cubs = self.shared.cfg.total_cubs();
        match event {
            Event::Deliver { dst, .. } => {
                (dst.raw() >= 1 && dst.raw() <= num_cubs).then(|| CubId(dst.raw() - 1))
            }
            Event::ReadIssue { cub, .. }
            | Event::DiskDone { cub, .. }
            | Event::SendDue { cub, .. }
            | Event::SendDone { cub, .. }
            | Event::ForwardPass { cub }
            | Event::InsertAttempt { cub }
            | Event::DeadmanPing { cub }
            | Event::DeadmanCheck { cub } => Some(*cub),
            _ => None,
        }
    }

    fn on_deliver(&mut self, now: SimTime, dst: NetNode, msg: Message) {
        let num_cubs = self.shared.cfg.total_cubs();
        if dst == self.shared.controller_node() {
            self.on_controller_message(now, msg);
        } else if Some(dst) == self.shared.backup_controller_node() {
            self.on_backup_message(now, msg);
        } else if dst.raw() >= 1 && dst.raw() <= num_cubs {
            let cub = CubId(dst.raw() - 1);
            self.cubs[cub.index()].on_message(&mut self.shared, now, msg);
        } else {
            let client = dst.raw() - 1 - num_cubs;
            self.on_client_message(now, client, msg);
        }
    }

    /// The backup controller: before promotion it only mirrors state;
    /// after promotion it runs the full controller logic.
    fn on_backup_message(&mut self, now: SimTime, msg: Message) {
        if self.promoted {
            return self.on_controller_message(now, msg);
        }
        match msg {
            Message::StartRequest {
                client,
                instance,
                file,
                requested_at,
                ..
            } => {
                self.backup
                    .on_start_request(instance, file, client, requested_at);
            }
            Message::InsertCommitted {
                instance,
                slot,
                first_send,
                ..
            } => {
                self.backup.on_insert_committed(instance, slot, first_send);
            }
            Message::StopRequest { instance } => {
                // The un-promoted backup only mirrors state; its routing
                // decision is discarded, so it must not trace one.
                let _ = self.backup.on_stop_request(
                    instance,
                    &self.shared.params,
                    now,
                    &mut Tracer::disabled(),
                );
            }
            Message::ViewerFinished { instance } => {
                self.backup.on_viewer_finished(instance);
            }
            Message::FailureNotice { failed } => {
                self.controller_believes_failed.set_failed(failed, true);
            }
            Message::RejoinRequest { from } => {
                self.controller_believes_failed.set_failed(from, false);
            }
            _ => {}
        }
    }

    fn on_controller_message(&mut self, now: SimTime, msg: Message) {
        match msg {
            Message::StartRequest {
                client,
                instance,
                file,
                from_block,
                requested_at,
            } => {
                // Admission control (disabled for the §5 tests).
                if let Some(limit) = self.shared.cfg.admission_limit {
                    let cap = f64::from(self.shared.params.capacity());
                    if f64::from(self.controller.active_streams()) >= limit * cap {
                        return; // Rejected; the client never starts.
                    }
                }
                if !self
                    .controller
                    .on_start_request(instance, file, client, requested_at)
                {
                    return; // Duplicate.
                }
                let Some(loc) = self
                    .shared
                    .catalog
                    .locate(file, tiger_layout::BlockNum(from_block))
                else {
                    return;
                };
                let stripe = self.shared.params.stripe();
                let primary_cub = stripe.cub_of(loc.disk);
                let primary = self.routed_target(primary_cub);
                let redundant = self.next_living_for_controller(primary);
                self.shared.tracer.record(
                    now,
                    CTRL,
                    TraceEvent::CtrlRouteStart {
                        viewer: instance.viewer.raw(),
                        inc: instance.incarnation,
                        primary: primary.raw(),
                        redundant: redundant.map_or(u32::MAX, CubId::raw),
                    },
                );
                let ctrl = self.active_controller;
                let route = |redundant_flag: bool| Message::RoutedStart {
                    client,
                    instance,
                    file,
                    from_block,
                    requested_at,
                    redundant: redundant_flag,
                };
                let primary_node = self.shared.cub_node(primary);
                self.shared
                    .send_control(now, ctrl, primary_node, route(false));
                if let Some(r) = redundant {
                    let r_node = self.shared.cub_node(r);
                    self.shared.send_control(now, ctrl, r_node, route(true));
                }
            }
            Message::StopRequest { instance } => {
                self.route_deschedule(now, instance);
            }
            Message::InsertCommitted {
                instance,
                slot,
                first_send,
                ..
            } => {
                if self
                    .controller
                    .on_insert_committed(instance, slot, first_send)
                {
                    // The viewer was stopped while its start was still
                    // queued (the §4.1.3 stop/insert race). Now that a cub
                    // has committed it into a slot, honour the stop —
                    // otherwise the stream would play on with nobody left
                    // to deschedule it.
                    self.route_deschedule(now, instance);
                }
            }
            Message::ViewerFinished { instance } => {
                if let Some(rec) = self.controller.viewer(&instance) {
                    if let (Some(slot), Some(omni)) = (rec.slot, self.shared.omniscient.as_mut()) {
                        omni.on_remove(slot, instance, now);
                    }
                }
                self.controller.on_viewer_finished(instance);
            }
            Message::FailureNotice { failed } => {
                let first = !self.controller_believes_failed.is_failed(failed);
                self.controller_believes_failed.set_failed(failed, true);
                if first {
                    self.maybe_shield(now, failed);
                }
            }
            Message::RejoinRequest { from } => {
                // A restarted cub is routable again.
                self.controller_believes_failed.set_failed(from, false);
            }
            other => {
                debug_assert!(false, "controller received unexpected message: {other:?}");
            }
        }
    }

    /// Routes a deschedule for `instance` if the controller knows its
    /// slot: the cub whose disk next services the slot (plus its
    /// successor) gets the kill. A viewer without a committed slot is
    /// tombstoned inside [`Controller::on_stop_request`] and descheduled
    /// when its `InsertCommitted` arrives.
    fn route_deschedule(&mut self, now: SimTime, instance: ViewerInstance) {
        if let Some((slot, cub)) = self.controller.on_stop_request(
            instance,
            &self.shared.params,
            now,
            &mut self.shared.tracer,
        ) {
            if let Some(omni) = self.shared.omniscient.as_mut() {
                omni.on_remove(slot, instance, now);
            }
            let hops = self.deschedule_hops();
            let request = Deschedule { instance, slot };
            let ctrl = self.active_controller;
            let target = self.routed_target(cub);
            let target_node = self.shared.cub_node(target);
            self.shared.send_control(
                now,
                ctrl,
                target_node,
                Message::Deschedule {
                    request,
                    hops_left: hops,
                },
            );
            if let Some(succ) = self.next_living_for_controller(target) {
                let succ_node = self.shared.cub_node(succ);
                self.shared.send_control(
                    now,
                    ctrl,
                    succ_node,
                    Message::Deschedule {
                        request,
                        hops_left: hops,
                    },
                );
            }
        }
    }

    /// The first living cub at or after `cub`, per the controller's beliefs.
    fn routed_target(&self, cub: CubId) -> CubId {
        self.controller_believes_failed
            .first_living_at(cub, self.shared.cfg.stripe.num_cubs)
    }

    fn next_living_for_controller(&self, from: CubId) -> Option<CubId> {
        self.controller_believes_failed
            .next_living_within(from, self.shared.cfg.stripe.num_cubs)
    }

    /// §4.1.2: deschedules propagate "until they're more than maxVStateLead
    /// in front of the slot being descheduled".
    fn deschedule_hops(&self) -> u32 {
        let cfg = &self.shared.cfg;
        let lead_cubs = (cfg.max_vstate_lead.as_nanos() + cfg.deschedule_hold.as_nanos())
            .div_ceil(cfg.block_play_time.as_nanos()) as u32;
        (lead_cubs + 2).min(cfg.stripe.num_cubs)
    }

    fn on_client_message(&mut self, now: SimTime, client: u32, msg: Message) {
        let Message::StreamData {
            instance,
            block,
            piece,
            total_pieces,
            ..
        } = msg
        else {
            debug_assert!(false, "client received unexpected message: {msg:?}");
            return;
        };
        let c = &mut self.clients[client as usize];
        let had_first = c
            .viewer(&instance)
            .is_some_and(|v| v.first_block_at.is_some());
        c.on_stream_data(instance, block, piece, total_pieces, now);
        if !had_first {
            if let Some(v) = c.viewer(&instance) {
                if let (Some(latency), false) = (v.start_latency_secs(), v.first_block_at.is_none())
                {
                    self.shared.metrics.record_start(v.load_at_request, latency);
                }
            }
        }
    }

    fn on_client_start(
        &mut self,
        now: SimTime,
        client: u32,
        file: FileId,
        from_block: u32,
        instance: ViewerInstance,
    ) {
        let Some(meta) = self.shared.catalog.get(file).copied() else {
            return;
        };
        if from_block >= meta.num_blocks {
            return; // Nothing to play.
        }
        let load =
            f64::from(self.controller.active_streams()) / f64::from(self.shared.params.capacity());
        self.clients[client as usize].on_request(
            instance,
            file,
            meta.num_blocks,
            from_block,
            now,
            load,
        );
        let node = self.shared.client_node(client);
        self.shared.send_to_controllers(
            now,
            node,
            Message::StartRequest {
                client: node.raw(),
                instance,
                file,
                from_block,
                requested_at: now,
            },
        );
    }

    /// Finds which client machine holds `instance`.
    fn client_of(&self, instance: &ViewerInstance) -> Option<u32> {
        (0..self.clients.len() as u32)
            .find(|&i| self.clients[i as usize].viewer(instance).is_some())
    }

    fn on_client_resume(&mut self, now: SimTime, instance: ViewerInstance) {
        let Some(client) = self.client_of(&instance) else {
            return;
        };
        let (file, resume_at) = {
            let v = self.clients[client as usize]
                .viewer(&instance)
                .expect("client_of found it");
            let next = v.high_water.map_or(v.base_block, |h| h + 1);
            (v.file, next)
        };
        let resumed = ViewerInstance {
            viewer: instance.viewer,
            incarnation: instance.incarnation + 1,
        };
        self.shared.tracer.record(
            now,
            CTRL,
            TraceEvent::SessionTransition {
                viewer: resumed.viewer.raw(),
                inc: resumed.incarnation,
                kind: 1,
                to_block: resume_at,
            },
        );
        self.on_client_start(now, client, file, resume_at, resumed);
    }

    fn on_client_seek(&mut self, now: SimTime, instance: ViewerInstance, to_block: u32) {
        let Some(client) = self.client_of(&instance) else {
            return;
        };
        let file = self.clients[client as usize]
            .viewer(&instance)
            .expect("client_of found it")
            .file;
        // Stop the old instance (idempotent if already gone) …
        self.on_client_stop(now, instance);
        // … and start the new incarnation at the target block.
        let moved = ViewerInstance {
            viewer: instance.viewer,
            incarnation: instance.incarnation + 1,
        };
        self.shared.tracer.record(
            now,
            CTRL,
            TraceEvent::SessionTransition {
                viewer: moved.viewer.raw(),
                inc: moved.incarnation,
                kind: 2,
                to_block,
            },
        );
        self.on_client_start(now, client, file, to_block, moved);
    }

    fn on_client_stop(&mut self, now: SimTime, instance: ViewerInstance) {
        // Find the owning client to mark it stopped.
        for c in &mut self.clients {
            if c.viewer(&instance).is_some() {
                c.on_stopped(instance);
            }
        }
        let rec = self
            .controller
            .viewer(&instance)
            .or_else(|| self.backup.viewer(&instance));
        let Some(rec) = rec else {
            return; // Already finished or never started.
        };
        let node = NetNode(rec.client);
        self.shared
            .send_to_controllers(now, node, Message::StopRequest { instance });
    }

    // --- Reporting -----------------------------------------------------------

    /// Access to the shared state (tests and experiment drivers).
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Mutable access to the shared state (experiment drivers).
    pub fn shared_mut(&mut self) -> &mut Shared {
        &mut self.shared
    }

    /// The cubs (read-only).
    pub fn cubs(&self) -> &[Cub] {
        &self.cubs
    }

    /// The controller (read-only).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Aggregate report for one client machine.
    pub fn client_report(&self, client: u32) -> ClientReport {
        self.clients[client as usize].report()
    }

    /// Aggregate report across all clients.
    pub fn all_clients_report(&self) -> ClientReport {
        let mut total = ClientReport::default();
        for c in &self.clients {
            let r = c.report();
            total.completed_viewers += r.completed_viewers;
            total.stopped_viewers += r.stopped_viewers;
            total.never_started += r.never_started;
            total.blocks_received += r.blocks_received;
            total.blocks_missing += r.blocks_missing;
            total.dup_blocks += r.dup_blocks;
        }
        total
    }

    /// The clients (read-only).
    pub fn clients(&self) -> &[Client] {
        &self.clients
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Rebuilds this system's content on a new hardware configuration
    /// (§2.2 restriping). Restriping is an offline operation: all viewers
    /// stop, the mover plan is computed and "executed" (its duration
    /// estimated from the plan and the hardware rates), and a fresh system
    /// comes up with every file re-laid-out on the new geometry.
    ///
    /// Returns the new system and the executed plan.
    pub fn restripe_into(
        self,
        new_stripe: tiger_layout::StripeConfig,
    ) -> (TigerSystem, tiger_layout::RestripePlan) {
        let old_stripe = self.shared.cfg.stripe;
        let plan = tiger_layout::RestripePlan::plan(&self.shared.catalog, old_stripe, new_stripe);
        let mut cfg = self.shared.cfg.clone();
        cfg.stripe = new_stripe;
        let mut sys = TigerSystem::new(cfg);
        // Reload the catalog in file order so ids are preserved.
        for meta in self.shared.catalog.files() {
            let duration = self
                .shared
                .cfg
                .block_play_time
                .mul_u64(u64::from(meta.num_blocks));
            let id = sys.add_file(meta.bitrate, duration);
            debug_assert_eq!(id, meta.id, "file ids must survive a restripe");
        }
        (sys, plan)
    }

    /// Finalizes and returns the omniscient checker's violations, merging
    /// them into the metrics.
    pub fn take_violations(&mut self) -> Vec<String> {
        let mut v = self.shared.metrics.violations.clone();
        if let Some(omni) = &self.shared.omniscient {
            v.extend(omni.violations().iter().cloned());
        }
        v
    }

    /// Closes a measurement window at `now`: computes the Figure 8/9 row
    /// (loads, control traffic) and starts a fresh window.
    ///
    /// `report_cub` selects the cub whose control traffic is plotted and,
    /// if `disk_report_cub` is set, whose disks' load is reported (the
    /// failed-mode test reports a mirroring cub's disks).
    pub fn sample_window(
        &mut self,
        now: SimTime,
        report_cub: CubId,
        disk_report_cub: Option<CubId>,
    ) -> WindowSample {
        let mut cub_cpu_sum = 0.0;
        let mut living = 0u32;
        for cub in &self.cubs {
            if cub.failed {
                continue;
            }
            living += 1;
            let node = self.shared.cub_node(cub.id);
            let bytes = self.shared.net.nic(node).window_bytes_per_sec(now);
            let ios: f64 = cub
                .disks()
                .iter()
                .map(|d| d.window_reads_per_sec(now))
                .sum();
            let msgs = self.shared.net.control_msg_rate(now, node) + cub.msgs_processed_rate(now);
            cub_cpu_sum += self.cpu.cub_load(bytes, ios, msgs);
        }
        // NIC utilization is reported for the selected cub, matching the
        // paper's per-cub send-rate quotes (a mirroring cub in the failed
        // test).
        let report_node_for_nic = self.shared.cub_node(report_cub);
        let nic_util = self
            .shared
            .net
            .nic_mut(report_node_for_nic)
            .window_utilization(now);
        let controller_cpu = self.cpu.controller_load(
            self.controller.request_rate(now),
            self.shared
                .net
                .control_msg_rate(now, self.shared.controller_node()),
        );
        let disk_load = {
            let cubs: Vec<&Cub> = match disk_report_cub {
                Some(c) => vec![&self.cubs[c.index()]],
                None => self.cubs.iter().filter(|c| !c.failed).collect(),
            };
            let mut sum = 0.0;
            let mut n = 0u32;
            for cub in cubs {
                for d in cub.disks() {
                    if !d.is_failed() {
                        sum += d.load_window(now);
                        n += 1;
                    }
                }
            }
            if n == 0 {
                0.0
            } else {
                sum / f64::from(n)
            }
        };
        let report_node = self.shared.cub_node(report_cub);
        let sample = WindowSample {
            at: now,
            streams: self.controller.active_streams(),
            cub_cpu: if living == 0 {
                0.0
            } else {
                cub_cpu_sum / f64::from(living)
            },
            controller_cpu,
            disk_load,
            control_bytes_per_sec: self.shared.net.control_rate(now, report_node),
            nic_utilization: nic_util,
        };
        self.shared.metrics.windows.push(sample.clone());
        self.reset_windows(now);
        sample
    }

    fn reset_windows(&mut self, now: SimTime) {
        self.window_start = now;
        self.shared.net.reset_windows(now);
        self.controller.reset_window(now);
        for cub in &mut self.cubs {
            cub.reset_window(now);
        }
    }
}
