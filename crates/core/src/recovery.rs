//! Rejoin replay-batch construction (the sub-interval rejoin of
//! Recovery v2).
//!
//! When a cub rejoins the ring, its predecessor replays the tail of its
//! retired log — the records it recently serviced — so the rejoiner
//! reconstructs in-flight viewer state immediately instead of waiting up
//! to a full forward interval for the records to circulate naturally.
//! The batch construction lives here, outside the cub, so the
//! `recovery/retired_replay` micro-benchmark can drive it against a
//! synthetic retired log without building a whole system.

use std::collections::HashSet;

use tiger_layout::{BlockNum, CubId, FileId};
use tiger_sched::ViewerState;
use tiger_sim::{SimDuration, SimTime};

use crate::config::TigerConfig;

/// How long a retired entry can still matter to a rejoin: a crashed cub
/// is declared within `deadman_timeout` (plus up to two check intervals
/// of skew), and a record withheld from circulation by a deschedule hold
/// can resurface for `deschedule_hold` more. Entries older than this can
/// never be the latest sighting a replay batch would claim from.
pub fn retired_retention(cfg: &TigerConfig) -> SimDuration {
    cfg.deadman_timeout + cfg.deadman_interval.mul_u64(2) + cfg.deschedule_hold
}

/// Drops retired-log entries older than `retention` before `now`. Service
/// order (ascending time) is preserved; [`replay_batch`] depends on it.
pub fn prune_retired(log: &mut Vec<(SimTime, ViewerState)>, now: SimTime, retention: SimDuration) {
    let horizon = now.saturating_sub(retention);
    log.retain(|&(at, _)| at >= horizon);
}

/// Builds the batch a ring predecessor replays to a rejoining cub.
///
/// For the most recent retired-log sighting of each viewer, the record is
/// skipped ahead to the first position whose nominal send time clears
/// `now + clear_horizon` — the same skip-to-reachable arithmetic as the
/// §2.3 gap bridge, with the skipped blocks as bounded loss — stepping
/// over positions owned by cubs still believed failed. A record is kept
/// only if the surviving position lands on the rejoiner's disks: every
/// other living owner is already receiving the record through normal
/// circulation.
///
/// `clear_horizon` is the mirror-commitment frontier. While the rejoiner
/// was down, every position of its streams was taken over at *forward*
/// time — up to the maximum viewer-state lead before the position came
/// due (plus forwarding slack) the acting successor had already created
/// the mirror viewer state and committed the piece holders to serve it.
/// A replayed
/// record claiming a position inside that frontier would have the
/// rejoiner serve a block the mirrors also serve — a double delivery.
/// Positions due beyond the frontier are forwarded only *after* the
/// rejoin flipped the ring's beliefs, so they go straight to the live
/// rejoiner and deduplicate with the replayed copy.
///
/// Receipt is idempotent on the rejoiner (already-served blocks,
/// play-sequence supersession, and late-arrival guards all discard
/// duplicates), so over-approximating the batch is safe; the filter only
/// bounds the message size.
#[allow(clippy::too_many_arguments)] // a pure reduction: log + clock + geometry + two oracles
pub fn replay_batch(
    retired: &[(SimTime, ViewerState)],
    now: SimTime,
    block_play_time: SimDuration,
    clear_horizon: SimDuration,
    ring_len: u32,
    locate: impl Fn(FileId, BlockNum) -> Option<CubId>,
    believes_failed: impl Fn(CubId) -> bool,
    rejoiner: CubId,
) -> Vec<ViewerState> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    // Latest sighting per viewer wins: walk newest-first, emit the first
    // entry seen for each (slot, instance), then restore service order.
    for &(at, vs) in retired.iter().rev() {
        if !seen.insert((vs.slot, vs.instance)) {
            continue;
        }
        // The entry's block was serviced around `at`; the stream has
        // since advanced one position per block play time. The first
        // claimable position is the one past the commitment frontier.
        let behind = now.saturating_since(at) + clear_horizon;
        let mut k = (behind.as_nanos() / block_play_time.as_nanos()) as u32 + 1;
        for _ in 0..ring_len {
            let cand = vs.advanced(k);
            let Some(owner) = locate(cand.file, cand.position) else {
                break; // Past end-of-file: the stream was finishing.
            };
            if believes_failed(owner) {
                k += 1; // Owner still dead: its block is lost; skip on.
                continue;
            }
            if owner == rejoiner {
                out.push(cand);
            }
            break;
        }
    }
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::ids::ViewerInstance;
    use tiger_sched::{SlotId, StreamKind};
    use tiger_sim::Bandwidth;

    fn vs(slot: u32, viewer: u64, position: u32) -> ViewerState {
        ViewerState {
            instance: ViewerInstance {
                viewer: tiger_layout::ViewerId(viewer),
                incarnation: 0,
            },
            client: 0,
            file: FileId(0),
            position: BlockNum(position),
            slot: SlotId(slot),
            play_seq: 0,
            bitrate: Bandwidth::from_mbit_per_sec(2),
            kind: StreamKind::Primary,
        }
    }

    /// 4-cub round-robin ownership over a 100-block file.
    fn owner(_file: FileId, pos: BlockNum) -> Option<CubId> {
        (pos.raw() < 100).then(|| CubId(pos.raw() % 4))
    }

    const NO_HORIZON: SimDuration = SimDuration::ZERO;

    #[test]
    fn keeps_only_rejoiner_owned_candidates_advanced_past_now() {
        let bpt = SimDuration::from_secs(1);
        // Serviced at t=10s, position 5 (owner 1). At t=12.5s the stream
        // is 2.5s along: k = 2 + 1 = 3 → position 8, owner 0.
        let retired = vec![(SimTime::from_secs(10), vs(0, 1, 5))];
        let now = SimTime::from_millis(12_500);
        let batch = replay_batch(
            &retired,
            now,
            bpt,
            NO_HORIZON,
            4,
            owner,
            |_| false,
            CubId(0),
        );
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].position, BlockNum(8));
        // The same entry aimed at a different rejoiner produces nothing:
        // position 8 is not cub 1's.
        let other = replay_batch(
            &retired,
            now,
            bpt,
            NO_HORIZON,
            4,
            owner,
            |_| false,
            CubId(1),
        );
        assert!(other.is_empty());
    }

    #[test]
    fn skips_believed_failed_owners_to_the_next_living_position() {
        let bpt = SimDuration::from_secs(1);
        let retired = vec![(SimTime::from_secs(10), vs(0, 1, 5))];
        let now = SimTime::from_millis(12_500);
        // Position 8's owner (cub 0) is believed failed; the bridge skips
        // to position 9 (owner 1).
        let batch = replay_batch(
            &retired,
            now,
            bpt,
            NO_HORIZON,
            4,
            owner,
            |c| c == CubId(0),
            CubId(1),
        );
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].position, BlockNum(9));
    }

    #[test]
    fn latest_sighting_per_viewer_wins_and_eof_entries_drop() {
        let bpt = SimDuration::from_secs(1);
        let retired = vec![
            (SimTime::from_secs(8), vs(0, 1, 3)),
            (SimTime::from_secs(10), vs(0, 1, 5)), // newer sighting of viewer 1
            (SimTime::from_secs(10), vs(1, 2, 98)), // advances past EOF (100)
        ];
        let now = SimTime::from_millis(12_500);
        let batch = replay_batch(
            &retired,
            now,
            bpt,
            NO_HORIZON,
            4,
            owner,
            |_| false,
            CubId(0),
        );
        // Viewer 1 contributes exactly one record, from its newer entry;
        // viewer 2's candidate (98 + 3 = 101) is past end-of-file.
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].position, BlockNum(8));
    }

    /// SplitMix64 — a hand-rolled generator so the property test needs
    /// no external dependency and stays deterministic per seed.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    #[test]
    fn retention_prunes_exactly_under_random_interleavings() {
        // Property: under any interleaving of services (appends) and
        // prune passes, the pruned log is *exactly* the full history
        // filtered to the retention window — nothing inside the window
        // is ever dropped, nothing outside it survives — and the replay
        // batch built from the pruned log matches the full history's
        // batch for every viewer sighted inside the window (pruning is
        // invisible to a rejoin that happens within detection time).
        let retention = SimDuration::from_secs(5);
        let bpt = SimDuration::from_secs(1);
        for seed in 0..64u64 {
            let mut rng = Rng(seed);
            let mut pruned: Vec<(SimTime, ViewerState)> = Vec::new();
            let mut full: Vec<(SimTime, ViewerState)> = Vec::new();
            let mut now = SimTime::ZERO;
            let mut horizon = SimTime::ZERO;
            for _ in 0..200 {
                now = now + SimDuration::from_millis(rng.below(700));
                if rng.below(4) < 3 {
                    // Service: viewers advance one position per block
                    // play time, so the sighting's position tracks time.
                    let viewer = rng.below(6);
                    let pos = (now.as_nanos() / bpt.as_nanos()) as u32 % 60;
                    let entry = (now, vs(viewer as u32, viewer, pos));
                    pruned.push(entry);
                    full.push(entry);
                } else {
                    prune_retired(&mut pruned, now, retention);
                    horizon = now.saturating_sub(retention);
                }
                let expect: Vec<_> = full
                    .iter()
                    .copied()
                    .filter(|&(at, _)| at >= horizon)
                    .collect();
                assert_eq!(pruned, expect, "seed {seed}: pruned log diverged");
                let sighted: HashSet<u64> =
                    pruned.iter().map(|(_, v)| v.instance.viewer.0).collect();
                for rejoiner in 0..4 {
                    let got = replay_batch(
                        &pruned,
                        now,
                        bpt,
                        NO_HORIZON,
                        4,
                        owner,
                        |_| false,
                        CubId(rejoiner),
                    );
                    let want: Vec<_> = replay_batch(
                        &full,
                        now,
                        bpt,
                        NO_HORIZON,
                        4,
                        owner,
                        |_| false,
                        CubId(rejoiner),
                    )
                    .into_iter()
                    .filter(|v| sighted.contains(&v.instance.viewer.0))
                    .collect();
                    assert_eq!(got, want, "seed {seed}: pruning changed the replay batch");
                }
            }
        }
    }

    #[test]
    fn clear_horizon_skips_mirror_committed_positions() {
        let bpt = SimDuration::from_secs(1);
        // Same entry as the first test, but with a 1.5s commitment
        // frontier: positions 8 and 9 (due 13s, 14s ≤ now + horizon)
        // may already be mirror-committed, so the first claimable
        // position is 10 — not cub 0's, so cub 0 gets nothing...
        let retired = vec![(SimTime::from_secs(10), vs(0, 1, 5))];
        let now = SimTime::from_millis(12_500);
        let horizon = SimDuration::from_millis(1_500);
        let batch = replay_batch(&retired, now, bpt, horizon, 4, owner, |_| false, CubId(0));
        assert!(batch.is_empty());
        // ...and cub 2 (position 10's owner) gets the claim instead.
        let batch = replay_batch(&retired, now, bpt, horizon, 4, owner, |_| false, CubId(2));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].position, BlockNum(10));
    }
}
