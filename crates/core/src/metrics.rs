//! System-wide measurement collection: the quantities Figures 8–10 and the
//! §5 text report.

use tiger_sim::{Histogram, SimTime};

/// One measurement window (the ≥50 s settle periods of the §5 ramp).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSample {
    /// Window end time.
    pub at: SimTime,
    /// Streams being served when the window closed.
    pub streams: u32,
    /// Mean cub CPU load over the window (mean across cubs).
    pub cub_cpu: f64,
    /// Controller CPU load.
    pub controller_cpu: f64,
    /// Mean disk load (the §5 definition: fraction of time waiting for an
    /// I/O completion), averaged over the reported disk set.
    pub disk_load: f64,
    /// Control traffic from the reported cub to all others, bytes/s.
    pub control_bytes_per_sec: f64,
    /// Mean NIC data utilization across cubs.
    pub nic_utilization: f64,
}

/// Block-delivery loss accounting (§5's most important measurement).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LossReport {
    /// Blocks the server scheduled for sending.
    pub blocks_scheduled: u64,
    /// Blocks the server failed to place on the network because the disk
    /// read had not completed in time.
    pub server_missed: u64,
    /// Of those, mirror-piece sends (failed-mode service).
    pub mirror_missed: u64,
    /// Blocks lost because their disk or cub was failed and mirror
    /// coverage could not supply them (e.g. during the detection window).
    pub failover_lost: u64,
    /// Blocks (or pieces) actually placed on the network.
    pub blocks_sent: u64,
}

impl LossReport {
    /// The overall loss rate as "1 in N", or `None` if lossless.
    pub fn one_in(&self) -> Option<u64> {
        let lost = self.server_missed + self.failover_lost;
        if lost == 0 {
            return None;
        }
        Some(self.blocks_scheduled / lost)
    }
}

/// Collected metrics for one run.
///
/// `PartialEq` is part of the determinism contract: two runs with the same
/// `(TigerConfig, workload, seed)` must produce *identical* metrics (see
/// `tests/determinism.rs`), floats included.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Per-window samples (the ramp curves).
    pub windows: Vec<WindowSample>,
    /// Loss accounting.
    pub loss: LossReport,
    /// Start latencies in seconds, with the schedule load at request time.
    pub start_latencies: Vec<(f64, f64)>,
    /// Times at which cub failures were detected (per detecting cub).
    pub failure_detections: Vec<(SimTime, u32)>,
    /// Ownership-protocol violations observed by the omniscient checker
    /// (must be empty in every correct run).
    pub violations: Vec<String>,
}

impl Metrics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a start latency sample.
    pub fn record_start(&mut self, schedule_load: f64, latency_secs: f64) {
        self.start_latencies.push((schedule_load, latency_secs));
    }

    /// Start latencies as a histogram (all loads).
    pub fn start_latency_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &(_, l) in &self.start_latencies {
            h.record(l);
        }
        h
    }

    /// Mean start latency among samples with schedule load in
    /// `[lo, hi)`.
    pub fn mean_start_latency_in(&self, lo: f64, hi: f64) -> Option<f64> {
        let samples: Vec<f64> = self
            .start_latencies
            .iter()
            .filter(|(load, _)| *load >= lo && *load < hi)
            .map(|&(_, l)| l)
            .collect();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_report_one_in() {
        let mut l = LossReport::default();
        assert_eq!(l.one_in(), None);
        l.blocks_scheduled = 4_100_000;
        l.server_missed = 15;
        l.failover_lost = 8;
        assert_eq!(l.one_in(), Some(178_260));
    }

    #[test]
    fn start_latency_binning() {
        let mut m = Metrics::new();
        m.record_start(0.5, 1.8);
        m.record_start(0.55, 2.2);
        m.record_start(0.95, 10.0);
        assert_eq!(m.mean_start_latency_in(0.5, 0.6), Some(2.0));
        assert_eq!(m.mean_start_latency_in(0.9, 1.01), Some(10.0));
        assert_eq!(m.mean_start_latency_in(0.0, 0.1), None);
        assert_eq!(m.start_latency_histogram().len(), 3);
    }
}
