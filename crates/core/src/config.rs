//! System configuration.

use tiger_disk::DiskProfile;
use tiger_layout::{RedundancyMode, StripeConfig};
use tiger_net::LatencyModel;
use tiger_sim::{Bandwidth, ByteSize, SimDuration};

/// How many successors receive each forwarded viewer state.
///
/// The paper chose double forwarding and explains why (§4.1.1); single
/// forwarding is implemented for the ablation that demonstrates the
/// schedule-information loss it causes during the failure-detection window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardingPolicy {
    /// Forward to the successor only ("would have halved the number of
    /// viewer states sent between cubs" — and loses data on failure).
    Single,
    /// Forward to the successor and the second successor (the paper's
    /// choice).
    Double,
}

/// Full configuration of a Tiger system.
#[derive(Clone, Debug)]
pub struct TigerConfig {
    /// Striping dimensions and decluster factor.
    pub stripe: StripeConfig,
    /// The block play time (1 s in the SOSP testbed).
    pub block_play_time: SimDuration,
    /// The system maximum stream bitrate (2 Mbit/s in the testbed).
    pub max_bitrate: Bandwidth,
    /// Disk model parameters.
    pub disk: DiskProfile,
    /// Per-machine NIC capacity (OC-3 payload ≈ 135 Mbit/s).
    pub nic_capacity: Bandwidth,
    /// Control-message latency model.
    pub latency: LatencyModel,
    /// Whether capacity is reserved for failed-mode mirror service (§3.1:
    /// "If a Tiger system is configured to be fault tolerant, the block
    /// service time is increased").
    pub fault_tolerant: bool,
    /// Minimum viewer-state lead (§4.1.1; 4 s typical).
    pub min_vstate_lead: SimDuration,
    /// Maximum viewer-state lead (§4.1.1; 9 s typical).
    pub max_vstate_lead: SimDuration,
    /// How long deschedules are held after their slot passes ("at least a
    /// few seconds").
    pub deschedule_hold: SimDuration,
    /// Scheduling lead: how far before a slot's start its disk read is
    /// issued and its ownership window opens.
    pub scheduling_lead: SimDuration,
    /// Ownership window duration ("small relative to the block play time").
    pub ownership_duration: SimDuration,
    /// Interval between deadman heartbeats.
    pub deadman_interval: SimDuration,
    /// Silence threshold after which a cub declares its predecessor dead.
    pub deadman_timeout: SimDuration,
    /// Interval between viewer-state forwarding passes (batching).
    pub forward_interval: SimDuration,
    /// Forwarding redundancy.
    pub forwarding: ForwardingPolicy,
    /// Whether cubs retain recently serviced records and "go back, figure
    /// out what schedule information had been lost and recreate it" after
    /// a failure (§2.3 gap bridging / §4.1.1's description of what single
    /// forwarding would force every failure to do). On by default; the
    /// forwarding ablation turns it off to reproduce the paper's argument.
    pub gap_recovery: bool,
    /// Whether a rejoining cub's ring predecessor replays its retired-log
    /// tail (advanced to the next due positions) the moment it sees the
    /// rejoin request, so the rejoiner reconstructs in-flight viewer
    /// state in sub-interval time instead of waiting up to one forward
    /// interval for natural circulation. On by default; the fast-rejoin
    /// chaos scenario turns it off to demonstrate the latency it buys.
    pub retired_replay: bool,
    /// Whether registered spares serve as interim mirror capacity before
    /// a restripe cut-over: on a failure declaration, the mirror pieces
    /// shadowing the failed cub's disks (the most-exposed decluster
    /// spans — one more holder failure loses them) are background-copied
    /// to a spare, which then serves them if that second failure lands.
    /// On by default; a no-op without provisioned spares.
    pub spare_shield: bool,
    /// Per-cub buffer cache (20 MB in the testbed; bounds read-ahead).
    pub buffer_cache: ByteSize,
    /// Number of client machines.
    pub num_clients: u32,
    /// Root RNG seed; a run is a pure function of (config, workload, seed).
    pub seed: u64,
    /// Reject start requests that would push schedule load above this
    /// fraction, if set (§5: "Tiger contains code to prevent schedule
    /// insertions beyond a certain level, which we disabled for this
    /// test").
    pub admission_limit: Option<f64>,
    /// Run a hot-standby backup controller (the paper's stated future
    /// work: "The Netshow product group plans on making the remaining
    /// functions of the controller fault tolerant"). The backup mirrors
    /// the controller's per-viewer state from the cubs' commit/finish
    /// notices and takes over `controller_failover_timeout` after the
    /// primary goes silent.
    pub backup_controller: bool,
    /// How long after the primary controller falls silent the backup
    /// promotes itself.
    pub controller_failover_timeout: SimDuration,
    /// Spare cubs built but not part of the stripe (§2.2 restriping: "the
    /// time to restripe a system does not depend on the size of the
    /// system"). Spares are powered machines with live disks that receive
    /// moved blocks during a live restripe and join the ring at cut-over.
    pub spare_cubs: u32,
    /// Which redundancy backend stores and serves each block's secondary
    /// data: the paper's declustered mirroring (the default — every
    /// existing experiment is byte-identical under it) or the
    /// `tiger-coded` network-coded backend, where a block is `2k` shards
    /// and any `k` reconstruct it.
    pub redundancy: RedundancyMode,
}

impl TigerConfig {
    /// The §5 testbed: 14 cubs × 4 disks, 2 Mbit/s streams, 0.25 MB blocks,
    /// decluster 4, minVStateLead 4 s, maxVStateLead 9 s.
    pub fn sosp97() -> Self {
        TigerConfig {
            stripe: StripeConfig::new(14, 4, 4),
            block_play_time: SimDuration::from_secs(1),
            max_bitrate: Bandwidth::from_mbit_per_sec(2),
            disk: DiskProfile::sosp97(),
            nic_capacity: Bandwidth::from_mbit_per_sec(135),
            latency: LatencyModel::lan_default(),
            fault_tolerant: true,
            min_vstate_lead: SimDuration::from_secs(4),
            max_vstate_lead: SimDuration::from_secs(9),
            deschedule_hold: SimDuration::from_secs(3),
            scheduling_lead: SimDuration::from_millis(700),
            ownership_duration: SimDuration::from_millis(125),
            deadman_interval: SimDuration::from_millis(500),
            deadman_timeout: SimDuration::from_millis(5_000),
            forward_interval: SimDuration::from_millis(500),
            forwarding: ForwardingPolicy::Double,
            gap_recovery: true,
            retired_replay: true,
            spare_shield: true,
            buffer_cache: ByteSize::from_mib(20),
            num_clients: 31,
            seed: 1997,
            admission_limit: None,
            backup_controller: false,
            controller_failover_timeout: SimDuration::from_secs(3),
            spare_cubs: 0,
            redundancy: RedundancyMode::Mirrored,
        }
    }

    /// A small, fast configuration for unit and integration tests:
    /// 4 cubs × 1 disk, decluster 2, short leads.
    pub fn small_test() -> Self {
        TigerConfig {
            stripe: StripeConfig::new(4, 1, 2),
            num_clients: 4,
            min_vstate_lead: SimDuration::from_secs(2),
            max_vstate_lead: SimDuration::from_secs(3),
            deschedule_hold: SimDuration::from_secs(2),
            deadman_timeout: SimDuration::from_millis(2_000),
            ..Self::sosp97()
        }
    }

    /// The worst-case per-slot disk work implied by this configuration:
    /// under mirroring, one primary read plus (if fault tolerant) one
    /// mirror-piece read; under the coded backend, the `k` shard reads
    /// that assemble every block (degraded service costs no extra — it
    /// is the same `k` reads against fewer candidate holders).
    pub fn disk_worst_read(&self) -> SimDuration {
        match self.redundancy {
            RedundancyMode::Mirrored => self.disk.worst_case_read(
                self.block_size(),
                self.stripe.decluster,
                self.fault_tolerant,
            ),
            RedundancyMode::Coded => self
                .disk
                .worst_case_coded_read(self.block_size(), self.stripe.decluster),
        }
    }

    /// Total cub machines built: striped members plus spares. Node
    /// numbering uses this so client and backup-controller node ids never
    /// shift when spares join the stripe at a restripe cut-over.
    pub fn total_cubs(&self) -> u32 {
        self.stripe.num_cubs + self.spare_cubs
    }

    /// The (maximum) block size: max bitrate × block play time.
    pub fn block_size(&self) -> ByteSize {
        self.max_bitrate.bytes_in(self.block_play_time)
    }

    /// How many read-ahead blocks the buffer cache can hold.
    pub fn buffer_blocks(&self) -> u32 {
        (self.buffer_cache.as_bytes() / self.block_size().as_bytes().max(1)) as u32
    }

    /// Validates cross-field invariants the protocol depends on.
    ///
    /// # Panics
    ///
    /// Panics if the configuration violates a protocol precondition.
    pub fn validate(&self) {
        assert!(
            self.latency.worst_case() < self.block_play_time,
            "§4.1.3: the block play time must exceed the worst inter-cub latency"
        );
        assert!(
            self.min_vstate_lead < self.max_vstate_lead,
            "minVStateLead must be below maxVStateLead"
        );
        assert!(
            self.scheduling_lead < self.min_vstate_lead,
            "§4.1.3: minVStateLead is always much larger than the scheduling lead"
        );
        assert!(
            self.ownership_duration < self.block_play_time,
            "ownership windows must not overlap between pointers"
        );
        assert!(
            self.deadman_timeout >= self.deadman_interval.mul_u64(2),
            "deadman timeout must allow at least two missed heartbeats"
        );
        if self.redundancy == RedundancyMode::Coded {
            assert!(
                2 * self.stripe.decluster <= self.stripe.num_disks(),
                "coded redundancy needs 2*decluster <= num_disks so a \
                 block's 2k shards land on distinct disks"
            );
            assert!(
                self.stripe.decluster <= 16,
                "coded shard indices must fit the client's 32-bit piece mask"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sosp_config_is_valid() {
        let c = TigerConfig::sosp97();
        c.validate();
        assert_eq!(c.block_size().as_bytes(), 250_000);
        assert_eq!(c.buffer_blocks(), 83); // 20 MiB / 250 kB
    }

    #[test]
    fn small_config_is_valid() {
        TigerConfig::small_test().validate();
    }

    #[test]
    #[should_panic(expected = "worst inter-cub latency")]
    fn latency_above_bpt_rejected() {
        let mut c = TigerConfig::sosp97();
        c.latency = LatencyModel::fixed(SimDuration::from_secs(2));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "much larger than the scheduling lead")]
    fn lead_ordering_enforced() {
        let mut c = TigerConfig::sosp97();
        c.scheduling_lead = SimDuration::from_secs(5);
        c.validate();
    }
}
