//! Simulation events.
//!
//! These are *driver-side* inputs: the DES translates each one into
//! typed messages or timer expiries for the sans-io machines in
//! `tiger_proto` (the thread/socket driver in `tiger-rt` feeds the same
//! machines from real sockets and wall-clock deadlines instead — see
//! `docs/PROTOCOL.md` for the driver contract).

use tiger_layout::CubId;
use tiger_net::NetNode;

use crate::msg::Message;

/// A token identifying one scheduled block (or mirror-piece) service on a
/// cub: the key into the cub's active-service table.
pub type ServiceToken = u64;

/// Everything that can happen in a Tiger simulation.
#[derive(Clone, Debug)]
pub enum Event {
    /// A control message arrives at a node.
    Deliver {
        /// The destination node.
        dst: NetNode,
        /// The message.
        msg: Message,
    },
    /// Time to issue the disk read for service `token` (one scheduling
    /// lead before the block is due at the network).
    ReadIssue {
        /// The cub that should read.
        cub: CubId,
        /// The service the read belongs to.
        token: ServiceToken,
    },
    /// A disk read issued by `cub` for service `token` completed.
    DiskDone {
        /// The cub whose disk finished.
        cub: CubId,
        /// The service the read belongs to.
        token: ServiceToken,
    },
    /// Service `token`'s block is due at the network.
    SendDue {
        /// The servicing cub.
        cub: CubId,
        /// The service to transmit.
        token: ServiceToken,
    },
    /// A paced block transmission finishes (frees NIC bandwidth and
    /// delivers the data to the client).
    SendDone {
        /// The sending cub.
        cub: CubId,
        /// The completed service.
        token: ServiceToken,
    },
    /// Periodic viewer-state forwarding pass on a cub (batching).
    ForwardPass {
        /// The cub running the pass.
        cub: CubId,
    },
    /// A cub attempts to insert queued start requests into owned slots.
    InsertAttempt {
        /// The attempting cub.
        cub: CubId,
    },
    /// Periodic deadman heartbeat send.
    DeadmanPing {
        /// The pinging cub.
        cub: CubId,
    },
    /// Periodic deadman silence check.
    DeadmanCheck {
        /// The checking cub.
        cub: CubId,
    },
    /// Fault injection: power-cut a cub.
    FailCub {
        /// The cub to kill.
        cub: CubId,
    },
    /// Fault injection: kill one disk on a living cub — distinct from
    /// [`Event::FailCub`]: the cub keeps running (and pinging), so no
    /// deadman fires and no mirror takeover covers the lost content.
    FailDisk {
        /// The cub owning the disk.
        cub: CubId,
        /// The cub-local disk index.
        disk_local: u32,
    },
    /// Fault injection: record a trace marker (freeze/resume instants,
    /// fault-window open/close) without touching any protocol state.
    FaultNote {
        /// The cub to record the marker on (or `tiger_trace::CTRL`).
        cub: u32,
        /// The marker event.
        ev: tiger_trace::TraceEvent,
    },
    /// Fault injection: power-cut the (primary) controller.
    FailController,
    /// Recovery: restart a crashed/fenced/power-cut cub with empty schedule
    /// state; it re-learns its slots via the rejoin protocol.
    RestartCub {
        /// The cub to restart.
        cub: CubId,
    },
    /// Live restripe: begin executing the planned block moves in the
    /// background of the stream schedule.
    RestripeStart,
    /// Live restripe: periodic pump — issue eligible background reads,
    /// retry stalled transfers, cut over when every move has landed.
    RestripeTick,
    /// Live restripe: a background read of move `idx` completed on its
    /// source disk; the block now transfers over the network.
    RestripeRead {
        /// Index into the restripe plan's move list.
        idx: u32,
    },
    /// Live restripe: move `idx` arrived at its destination cub.
    RestripeArrive {
        /// Index into the restripe plan's move list.
        idx: u32,
    },
    /// Spare shield: periodic pump — issue eligible background reads of
    /// the mirror pieces being copied to a provisioned spare.
    ShieldTick,
    /// Spare shield: a background read of copy `idx` completed on its
    /// source disk; the piece now transfers over the network.
    ShieldRead {
        /// Index into the shield executor's copy list.
        idx: u32,
    },
    /// Spare shield: copy `idx` arrived at its spare.
    ShieldArrive {
        /// Index into the shield executor's copy list.
        idx: u32,
    },
    /// The backup controller's silence timer fired: promote it.
    PromoteBackup,
    /// Workload: a client issues a start request for a file.
    ClientStart {
        /// The client node index (0-based among clients).
        client: u32,
        /// The file to request.
        file: tiger_layout::FileId,
        /// First block to play.
        from_block: u32,
        /// The pre-allocated viewer instance.
        instance: tiger_layout::ids::ViewerInstance,
    },
    /// Workload: a client issues a stop request for a viewer.
    ClientStop {
        /// The viewer instance to stop.
        instance: tiger_layout::ids::ViewerInstance,
    },
    /// Workload: resume a paused viewer from where it left off (VCR
    /// resume). The new play instance bumps the incarnation number.
    ClientResume {
        /// The paused viewer instance.
        instance: tiger_layout::ids::ViewerInstance,
    },
    /// Workload: jump a playing viewer to a new position (VCR seek): stop
    /// the current instance and start a new incarnation at `to_block`.
    ClientSeek {
        /// The viewer instance to move.
        instance: tiger_layout::ids::ViewerInstance,
        /// The block to jump to.
        to_block: u32,
    },
}
