//! The CPU cost model (paper §5).
//!
//! "We believe that most of the CPU time was spent packetizing the video
//! data to be sent to the clients." Cub CPU load is therefore modelled as a
//! linear function of data bytes sent, disk I/Os issued, and control
//! messages processed; the controller's load is a function of start/stop
//! request rate only — which is what makes its curve flat in Figures 8/9.
//!
//! The coefficients are calibrated so that a cub sending the failed-mode
//! full-load 13.4 MB/s (43 primary streams plus mirror pieces) shows ≈85 %
//! CPU, matching §5: "Even with one cub failed and the system at its rated
//! maximum load, the cubs didn't exceed 85% mean CPU usage."

/// Linear CPU cost coefficients for a Pentium-133-class machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuModel {
    /// Fraction of a CPU consumed per data byte sent per second
    /// (packetization; the dominant term).
    pub per_send_byte: f64,
    /// Fraction of a CPU per disk I/O per second.
    pub per_disk_io: f64,
    /// Fraction of a CPU per control message sent or received per second.
    pub per_control_msg: f64,
    /// Fraction of a CPU per start/stop request handled per second
    /// (controller-side work).
    pub per_request: f64,
    /// Constant background load.
    pub base: f64,
}

impl CpuModel {
    /// The calibrated Pentium-133 model.
    ///
    /// At failed-mode full load a mirroring cub sends ≈13.4 MB/s
    /// (§5), issues ≈54 disk I/Os/s (43 primaries + 10.75 mirror pieces)
    /// and handles ≈200 control messages/s:
    /// `13.4e6 × 58e-9 + 54 × 6e-4 + 200 × 1e-4 + 0.02 ≈ 0.85`.
    pub fn pentium133() -> Self {
        CpuModel {
            per_send_byte: 58e-9,
            per_disk_io: 6e-4,
            per_control_msg: 1e-4,
            per_request: 2e-3,
            base: 0.02,
        }
    }

    /// Cub CPU load given observed rates (per second).
    pub fn cub_load(
        &self,
        send_bytes_per_sec: f64,
        disk_ios_per_sec: f64,
        control_msgs_per_sec: f64,
    ) -> f64 {
        (self.base
            + self.per_send_byte * send_bytes_per_sec
            + self.per_disk_io * disk_ios_per_sec
            + self.per_control_msg * control_msgs_per_sec)
            .min(1.0)
    }

    /// Controller CPU load given the start/stop request rate.
    pub fn controller_load(&self, requests_per_sec: f64, control_msgs_per_sec: f64) -> f64 {
        (self.base
            + self.per_request * requests_per_sec
            + self.per_control_msg * control_msgs_per_sec)
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failed_mode_full_load_is_about_85_percent() {
        let m = CpuModel::pentium133();
        // §5: 43 streams + 10.75 mirror cover = 13.4 MB/s sends; ~54 disk
        // I/Os/s; a few hundred control messages/s.
        let load = m.cub_load(13_400_000.0, 54.0, 200.0);
        assert!((0.80..0.90).contains(&load), "load {load}");
    }

    #[test]
    fn unfailed_full_load_is_lower() {
        let m = CpuModel::pentium133();
        // 43 streams × 0.25 MB/s = 10.75 MB/s, 43 I/Os/s.
        let unfailed = m.cub_load(10_750_000.0, 43.0, 150.0);
        let failed = m.cub_load(13_400_000.0, 54.0, 200.0);
        assert!(unfailed < failed);
        assert!(unfailed > 0.5, "still substantial at full load: {unfailed}");
    }

    #[test]
    fn load_is_linear_in_streams() {
        let m = CpuModel::pentium133();
        let at = |streams: f64| m.cub_load(streams * 250_000.0, streams, streams * 4.0);
        let l10 = at(10.0) - m.base;
        let l20 = at(20.0) - m.base;
        let l40 = at(40.0) - m.base;
        assert!((l20 / l10 - 2.0).abs() < 1e-9);
        assert!((l40 / l10 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn controller_load_is_flat_in_streams() {
        let m = CpuModel::pentium133();
        // The controller sees only start/stop requests; stream count does
        // not appear in its load.
        let low = m.controller_load(1.0, 5.0);
        let high = m.controller_load(1.0, 5.0);
        assert_eq!(low, high);
        assert!(low < 0.05);
    }

    #[test]
    fn load_saturates_at_one() {
        let m = CpuModel::pentium133();
        assert_eq!(m.cub_load(1e12, 1e6, 1e6), 1.0);
    }
}
