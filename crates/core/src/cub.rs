//! The cub: Tiger's per-machine schedule manager (paper §4.1).
//!
//! A cub holds a bounded view of the schedule near its disks, services
//! entries as its disk pointers cross their slots (read one scheduling
//! lead early, transmit paced at the stream rate), forwards viewer states
//! to its successor and second successor, applies and propagates
//! deschedules, inserts queued start requests into slots it owns, runs the
//! deadman protocol against its predecessor, and — when a neighbour dies —
//! manufactures mirror viewer states so the declustered secondary copies
//! take over.

use tiger_sim::{DetHashMap as HashMap, DetHashSet as HashSet};

use tiger_disk::{DiskError, DiskRequest, RequestKind};
use tiger_layout::ids::ViewerInstance;
use tiger_layout::{BlockIndex, BlockNum, CubId, DiskId, DiskSpace, FileId};
use tiger_proto::{InsertMachine, RingConfig, RingMachine};
use tiger_sched::view::ViewApply;
use tiger_sched::{Deschedule, ScheduleView, SlotId, StreamKind, ViewerState};
use tiger_sim::{Counter, SimDuration, SimTime};
use tiger_trace::TraceEvent;

use crate::config::ForwardingPolicy;
use crate::event::{Event, ServiceToken};
use crate::msg::Message;
use crate::system::{CodedRuntime, Shared};

pub use tiger_proto::insert::PendingStart;

/// The ring machine's timing constants, as this driver configures them.
fn ring_cfg(sh: &Shared) -> RingConfig {
    RingConfig {
        deadman_timeout: sh.cfg.deadman_timeout,
        deadman_interval: sh.cfg.deadman_interval,
        min_vstate_lead: sh.cfg.min_vstate_lead,
    }
}

/// Key identifying one active service on this cub.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct ServiceKey {
    slot: SlotId,
    instance: ViewerInstance,
    kind: KindKey,
    /// Distinguishes successive laps of the same slot: on small rings a
    /// slot's next-lap record can arrive while the previous block is still
    /// being transmitted.
    play_seq: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum KindKey {
    Primary,
    Mirror(u32),
    Coded(u32),
}

fn kind_key(k: StreamKind) -> KindKey {
    match k {
        StreamKind::Primary => KindKey::Primary,
        StreamKind::Mirror { piece, .. } => KindKey::Mirror(piece),
        StreamKind::Coded { shard, .. } => KindKey::Coded(shard),
    }
}

/// Per-block key under which the coded backend's load rings account a
/// block's shard reservations: the play sequence number stands in for the
/// incarnation, so consecutive blocks of one stream hold distinct
/// reservations (their `2k`-disk windows overlap as the stream advances,
/// and releasing one block must not free the next one's).
fn coded_load_key(vs: &ViewerState) -> ViewerInstance {
    ViewerInstance {
        viewer: vs.instance.viewer,
        incarnation: vs.play_seq,
    }
}

/// One block (or mirror piece) this cub has committed to send.
#[derive(Clone, Copy, Debug)]
struct Active {
    vs: ViewerState,
    /// Local index of the disk that holds the bytes.
    disk_local: u32,
    send_at: SimTime,
    /// Paced transmission duration (bpt for primaries, bpt/decluster for
    /// mirror pieces).
    send_duration: SimDuration,
    /// Payload bytes delivered to the client.
    payload: u64,
    /// On-disk extent size charged against the buffer cache.
    read_bytes: u64,
    read_issued: bool,
    read_ready: bool,
    /// A read-ahead buffer is charged to this service.
    buffer_held: bool,
    transmitting: bool,
    /// The block went out (or its transmission is in progress).
    sent: bool,
    /// The deadline passed before the read completed; the block was
    /// dropped but the viewer continues (only this block is lost).
    missed: bool,
    forwarded: bool,
    /// Cancelled by a deschedule or failure; do not send or forward.
    dropped: bool,
}

impl Active {
    fn new(
        vs: ViewerState,
        disk_local: u32,
        send_at: SimTime,
        send_duration: SimDuration,
        payload: u64,
        forwarded: bool,
    ) -> Self {
        Active {
            vs,
            disk_local,
            send_at,
            send_duration,
            payload,
            read_bytes: 0,
            read_issued: false,
            read_ready: false,
            buffer_held: false,
            transmitting: false,
            sent: false,
            missed: false,
            forwarded,
            dropped: false,
        }
    }

    /// Whether the entry's work is finished and it can be reclaimed.
    fn finished(&self) -> bool {
        self.forwarded
            && !self.transmitting
            && (self.sent || self.missed || self.dropped)
            && (!self.read_issued || self.read_ready)
    }
}

/// A shadow record: schedule information this cub holds for redundancy
/// (second-successor copies), keyed by slot and instance.
#[derive(Clone, Copy, Debug)]
struct Shadow {
    vs: ViewerState,
    due: SimTime,
}

/// The per-machine state of one cub.
#[derive(Debug)]
pub struct Cub {
    /// This cub's id.
    pub id: CubId,
    /// Whether this cub has been power-cut.
    pub failed: bool,
    disks: Vec<tiger_disk::Disk>,
    space: Vec<DiskSpace>,
    index: BlockIndex,
    view: ScheduleView,
    active: HashMap<ServiceToken, Active>,
    by_key: HashMap<ServiceKey, ServiceToken>,
    next_token: ServiceToken,
    shadows: HashMap<(SlotId, ViewerInstance), Shadow>,
    /// Blocks for which this cub (as acting successor) already created
    /// mirror viewer states, to make creation idempotent.
    mirrors_created: HashSet<(SlotId, ViewerInstance, u32)>,
    /// The sans-io insertion machine: queued and redundant starts, and
    /// the one-armed attempt timer (`tiger_proto::insert`).
    ins: InsertMachine,
    /// The sans-io ring machine: failure beliefs, deadman clocks, rejoin
    /// horizons, and the hand-back window (`tiger_proto::ring`). This
    /// struct is the DES *driver* for it: machine verdicts become event
    /// schedules, simulated sends, and trace records here.
    ring: RingMachine,
    /// Read-ahead buffer bytes in use (bounded by the buffer cache).
    buffer_bytes_in_use: u64,
    /// Recently buffered blocks, newest last (the buffer cache doubles as
    /// a tiny block cache; §5 measured its hit rate at "less than 0.05%"
    /// because staggered viewers rarely re-read a block while it is still
    /// resident).
    cache_resident: std::collections::VecDeque<(DiskId, FileId, BlockNum)>,
    /// Block-cache hits (reads satisfied without touching the disk).
    pub cache_hits: Counter,
    /// Block-cache lookups.
    pub cache_lookups: Counter,
    /// Peak buffer usage in bytes (diagnostics; compare against the 20 MB
    /// cache of the testbed).
    pub peak_buffer_bytes: u64,
    /// When this cub's next periodic forwarding pass is due (maintained by
    /// the event loop; lets acceptance decide whether a record can wait).
    pub next_forward_pass: SimTime,
    /// Recently serviced-and-forwarded primary records, retained for one
    /// failure-detection window so that, as "the preceding living cub",
    /// this cub can re-send scheduling information across a gap of
    /// consecutive failures (§2.3).
    retired_log: Vec<(SimTime, ViewerState)>,
    /// Control messages processed (receive side, for the CPU model).
    msgs_processed: Counter,
    /// Viewer instances for which an EOF notice was already sent.
    eof_sent: HashSet<ViewerInstance>,
    /// Set while this cub is rejoining after a restart: the restart
    /// instant, taken (and traced as convergence) on the first primary
    /// service acceptance of the new life.
    rejoined_at: Option<SimTime>,
}

impl Cub {
    /// Creates an idle cub with its disks.
    pub fn new(id: CubId, num_cubs: u32, disks: Vec<tiger_disk::Disk>) -> Self {
        let space = disks
            .iter()
            .map(|d| DiskSpace::half_split(d.profile().capacity))
            .collect();
        Cub {
            id,
            failed: false,
            disks,
            space,
            index: BlockIndex::new(),
            view: ScheduleView::new(),
            active: HashMap::default(),
            by_key: HashMap::default(),
            next_token: 0,
            shadows: HashMap::default(),
            mirrors_created: HashSet::default(),
            ins: InsertMachine::new(),
            ring: RingMachine::new(id, num_cubs),
            buffer_bytes_in_use: 0,
            cache_resident: std::collections::VecDeque::new(),
            cache_hits: Counter::new(),
            cache_lookups: Counter::new(),
            peak_buffer_bytes: 0,
            next_forward_pass: SimTime::ZERO,
            retired_log: Vec::new(),
            msgs_processed: Counter::new(),
            eof_sent: HashSet::default(),
            rejoined_at: None,
        }
    }

    // --- Content loading -------------------------------------------------

    /// Allocates space and indexes one primary block extent on a local
    /// disk. Called by the system while laying out a file.
    pub fn load_primary(
        &mut self,
        disk: DiskId,
        local: u32,
        file: FileId,
        block: BlockNum,
        size: tiger_sim::ByteSize,
    ) {
        let (offset, len) = self.space[local as usize]
            .allocate(tiger_layout::DiskRegion::Primary, size)
            .expect("primary region full while loading content");
        let entry = tiger_layout::IndexEntry::pack(offset, len).expect("extent packs");
        self.index
            .insert_primary(disk, file, block, entry)
            .expect("no duplicate blocks while loading");
    }

    /// Allocates and indexes one mirror-piece extent on a local disk.
    pub fn load_secondary(
        &mut self,
        disk: DiskId,
        local: u32,
        file: FileId,
        block: BlockNum,
        piece: u32,
        size: tiger_sim::ByteSize,
    ) {
        let (offset, len) = self.space[local as usize]
            .allocate(tiger_layout::DiskRegion::Secondary, size)
            .expect("secondary region full while loading content");
        let entry = tiger_layout::IndexEntry::pack(offset, len).expect("extent packs");
        self.index
            .insert_secondary(disk, file, block, piece, entry)
            .expect("no duplicate pieces while loading");
    }

    // --- Introspection ---------------------------------------------------

    /// The cub's bounded schedule view.
    pub fn view(&self) -> &ScheduleView {
        &self.view
    }

    /// Local disks (for load reporting).
    pub fn disks(&self) -> &[tiger_disk::Disk] {
        &self.disks
    }

    /// Mutable local disks (window resets).
    pub fn disks_mut(&mut self) -> &mut [tiger_disk::Disk] {
        &mut self.disks
    }

    /// Queued (not yet inserted) start requests.
    pub fn queued_starts(&self) -> usize {
        self.ins.queued()
    }

    /// Total schedule information currently held: live view entries,
    /// shadow (redundancy) records, active services, and the retired log.
    /// §4: "A necessary but insufficient condition for scalability is that
    /// participants' views be limited to a size that does not grow as a
    /// function of the scale of the system" — the boundedness test samples
    /// this.
    pub fn schedule_information_held(&self) -> usize {
        self.view.len() + self.shadows.len() + self.active.len() + self.retired_log.len()
    }

    /// Control messages processed per second over the current window.
    pub fn msgs_processed_rate(&self, now: SimTime) -> f64 {
        self.msgs_processed.window_rate(now)
    }

    /// Starts a fresh measurement window.
    pub fn reset_window(&mut self, now: SimTime) {
        self.msgs_processed.reset_window(now);
        for d in &mut self.disks {
            d.reset_window(now);
        }
    }

    /// Whether this cub currently believes `cub` is failed.
    pub fn believes_failed(&self, cub: CubId) -> bool {
        self.ring.believes_failed(cub)
    }

    // --- Ring helpers (delegated to the sans-io ring machine) -------------

    fn next_living(&self, from: CubId) -> Option<CubId> {
        self.ring.next_living(from)
    }

    fn prev_living(&self, from: CubId) -> Option<CubId> {
        self.ring.prev_living(from)
    }

    /// Whether this cub is the acting successor for `failed` (the first
    /// living cub after it).
    fn acting_successor_of(&self, failed: CubId) -> bool {
        self.ring.acting_successor_of(failed)
    }

    // --- Message entry point ----------------------------------------------

    /// Handles a delivered control message.
    pub fn on_message(&mut self, sh: &mut Shared, now: SimTime, msg: Message) {
        if self.failed {
            // Narrow spare-shield allowance: a spare holding ready shield
            // spans serves the mirror records the cover path routes to it,
            // while remaining a non-member for every other purpose (no
            // ring work, no forwarding, no primary service).
            if sh.shield.is_serving_spare(self.id) {
                match msg {
                    Message::ViewerState(vs) => self.on_shield_state(sh, now, vs),
                    Message::ViewerStates(ref batch) => {
                        for &vs in batch.iter() {
                            self.on_shield_state(sh, now, vs);
                        }
                    }
                    _ => {}
                }
            }
            return;
        }
        self.msgs_processed.incr();
        match msg {
            Message::ViewerState(vs) => self.on_viewer_state(sh, now, vs),
            Message::ViewerStates(batch) => {
                for &vs in batch.iter() {
                    self.on_viewer_state(sh, now, vs);
                }
            }
            Message::Deschedule { request, hops_left } => {
                self.on_deschedule(sh, now, request, hops_left);
            }
            Message::RoutedStart {
                client,
                instance,
                file,
                from_block,
                requested_at,
                redundant,
            } => {
                self.on_routed_start(
                    sh,
                    now,
                    PendingStart {
                        instance,
                        client,
                        file,
                        from_block: BlockNum(from_block),
                        requested_at,
                    },
                    redundant,
                );
            }
            Message::DeadmanPing { from } => {
                if self.ring.on_ping(from, now) {
                    // A ping from a cub this cub already declared dead:
                    // a stalled process resumed (a zombie). Tell it so it
                    // fences itself off — its streams were taken over,
                    // and two servers working the same schedule would
                    // double-deliver blocks.
                    let me = sh.cub_node(self.id);
                    let zombie = sh.cub_node(from);
                    sh.send_control(now, me, zombie, Message::FailureNotice { failed: from });
                }
            }
            Message::FailureNotice { failed } => {
                self.on_failure_notice(sh, now, failed);
            }
            Message::RejoinRequest { from } => {
                self.on_rejoin_request(sh, now, from);
            }
            Message::RejoinAck { from, failed } => {
                // A ring neighbour's bounded-view exchange: merge its
                // failure beliefs (this cub restarted knowing nothing).
                self.ring.heard_from(from, now);
                for &c in failed.iter() {
                    if c != self.id.raw() {
                        self.declare_failed(sh, now, CubId(c));
                    }
                }
            }
            Message::RetiredReplay { from, states } => {
                // The predecessor's retired-log tail, already advanced to
                // this cub's next due positions. Receipt idempotence
                // (already-served blocks, play-sequence supersession, late
                // guards) dedups against anything the normal circulation
                // also delivers.
                self.ring.heard_from(from, now);
                for &vs in states.iter() {
                    self.on_viewer_state(sh, now, vs);
                }
            }
            _ => {
                debug_assert!(false, "cub received unexpected message: {msg:?}");
            }
        }
    }

    /// A crashed neighbour announces it is back (§4 ownership insertion
    /// restores its slots; this message restores the ring bookkeeping).
    fn on_rejoin_request(&mut self, sh: &mut Shared, now: SimTime, from: CubId) {
        // The machine clears the belief, opens the rejoiner's
        // vulnerability horizon, and re-baselines deadman monitoring;
        // its outcome says what this driver owes the rejoiner.
        let Some(outcome) = self.ring.on_rejoin_request(from, now, &ring_cfg(sh)) else {
            return;
        };
        // Ring neighbours reply with their current beliefs so the
        // rejoiner learns about other failures without waiting a full
        // deadman timeout per dead cub.
        if outcome.should_ack {
            let failed = self.ring.failed_ids();
            let me = sh.cub_node(self.id);
            sh.send_control(
                now,
                me,
                sh.cub_node(from),
                Message::RejoinAck {
                    from: self.id,
                    failed: failed.into(),
                },
            );
        }
        if outcome.should_replay && sh.cfg.retired_replay {
            self.replay_retired_tail(sh, now, from);
        }
        if outcome.was_covering {
            self.grant_handback(sh, now, from);
        }
    }

    /// Sub-interval rejoin: as the rejoiner's ring predecessor, replay the
    /// retired-log tail — each recently serviced record skipped ahead to
    /// its next due position, the same arithmetic as the §2.3 gap bridge —
    /// filtered to positions that land on the rejoiner's disks. The
    /// rejoiner rebuilds its in-flight viewer state the moment the batch
    /// arrives instead of waiting up to a full forward interval for
    /// natural circulation; receipt idempotence makes over-sending safe.
    fn replay_retired_tail(&mut self, sh: &mut Shared, now: SimTime, to: CubId) {
        let bpt = sh.params.block_play_time();
        // Mirror-commitment frontier: a record reaches its owner — or,
        // while the owner is believed dead, the acting successor, which
        // mirror-commits it on receipt — up to the maximum legitimate
        // lead ahead of the position's due time (maxVStateLead plus one
        // block play time per bridged failure, the same bound the
        // acceptance staleness guard uses). Positions due inside that
        // lead were taken over before the rejoin's belief flip could
        // stop them; one forward interval of slack covers pass cadence
        // and the flip's propagation. Replay must not claim a position
        // the committed mirror chain will also serve.
        let clear_horizon = sh.cfg.max_vstate_lead
            + bpt.mul_u64(u64::from(sh.params.stripe().decluster) + 1)
            + sh.cfg.forward_interval;
        let states = crate::recovery::replay_batch(
            &self.retired_log,
            now,
            bpt,
            clear_horizon,
            self.ring.num_cubs(),
            |file, pos| sh.catalog.locate(file, pos).map(|loc| loc.cub),
            |c| self.ring.believes_failed(c),
            to,
        );
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::RetiredReplay {
                to: to.raw(),
                count: states.len() as u32,
            },
        );
        if !states.is_empty() {
            let me = sh.cub_node(self.id);
            let batch: std::sync::Arc<[ViewerState]> = states.into();
            sh.send_control(
                now,
                me,
                sh.cub_node(to),
                Message::RetiredReplay {
                    from: self.id,
                    states: batch,
                },
            );
        }
        // Aged active entries due to forward into the rejoiner should go
        // now, not at the next periodic cadence.
        sh.queue.schedule(
            now + SimDuration::from_millis(1),
            Event::ForwardPass { cub: self.id },
        );
    }

    /// Mirror catch-up (the covering partner's half of a rejoin): hand the
    /// rejoiner every shadowed record for its disks whose block this cub
    /// has *not* already driven to the mirrors — those blocks' pieces are
    /// in flight and a primary re-send would serve the slot twice. A
    /// bounded window then keeps relaying freshly shadowed records until
    /// the rejoiner's own lead pipeline is warm (one minVStateLead).
    fn grant_handback(&mut self, sh: &mut Shared, now: SimTime, to: CubId) {
        let grant: Vec<ViewerState> = self
            .shadows
            .values()
            .filter(|s| {
                // Only fresh records (send time still ahead): a stale
                // pre-failure shadow carries an old position, and replaying
                // it into the rejoiner's empty view would re-serve a block
                // the mirrors already delivered.
                s.due > now
                    && sh
                        .catalog
                        .locate(s.vs.file, s.vs.position)
                        .is_some_and(|loc| loc.cub == to)
                    && !self.mirrors_created.contains(&(
                        s.vs.slot,
                        s.vs.instance,
                        s.vs.position.raw(),
                    ))
            })
            .map(|s| s.vs)
            .collect();
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::RejoinGrant {
                to: to.raw(),
                count: grant.len() as u32,
            },
        );
        self.ring.open_handback(to, now, &ring_cfg(sh));
        if !grant.is_empty() {
            let me = sh.cub_node(self.id);
            let batch: std::sync::Arc<[ViewerState]> = grant.into();
            sh.send_control(now, me, sh.cub_node(to), Message::ViewerStates(batch));
        }
    }

    // --- Viewer-state handling (§4.1.1) -----------------------------------

    fn on_viewer_state(&mut self, sh: &mut Shared, now: SimTime, vs: ViewerState) {
        // Any sighting of a viewer state supersedes a redundant start we
        // might be holding for the same instance.
        self.ins.superseded_by_sighting(&vs.instance);

        match vs.kind {
            StreamKind::Primary => self.on_primary_state(sh, now, vs),
            StreamKind::Mirror { failed_disk, piece } => {
                self.on_mirror_state(sh, now, vs, failed_disk, piece);
            }
            StreamKind::Coded { home_disk, shard } => {
                self.on_coded_state(sh, now, vs, home_disk, shard);
            }
        }
    }

    fn on_primary_state(&mut self, sh: &mut Shared, now: SimTime, vs: ViewerState) {
        let Some(meta) = sh.catalog.get(vs.file).copied() else {
            return;
        };
        if vs.position.raw() >= meta.num_blocks {
            // End of file: the viewer leaves the schedule (§4.1.2).
            if self.eof_sent.insert(vs.instance) {
                sh.send_to_controllers(
                    now,
                    sh.cub_node(self.id),
                    Message::ViewerFinished {
                        instance: vs.instance,
                    },
                );
            }
            return;
        }
        let loc = sh
            .catalog
            .locate(vs.file, vs.position)
            .expect("position checked in range");

        // §4.1.2 idempotence, per-instance monotonicity: a state whose
        // block this cub already serviced (or is servicing a later block
        // of) is a wrapped, re-driven, or duplicated stale copy. Accepting
        // it would put a second, lagging copy of the stream into
        // circulation that re-delivers every block.
        if self.already_served(&vs) {
            let (slot, viewer, inc) = vkey(&vs);
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::VsDuplicate {
                    slot,
                    viewer,
                    inc,
                    play_seq: vs.play_seq,
                },
            );
            return;
        }

        if loc.cub == self.id {
            self.accept_service(sh, now, vs, loc.disk);
        } else if self.ring.believes_failed(loc.cub) && self.acting_successor_of(loc.cub) {
            self.cover_failed_disk(sh, now, vs, loc.disk);
        } else {
            // Redundancy copy: shadow it until it is superseded or stale.
            let (slot, viewer, inc) = vkey(&vs);
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::VsShadow { slot, viewer, inc },
            );
            let due = sh.params.slot_send_time(loc.disk, vs.slot, now);
            let entry = self
                .shadows
                .entry((vs.slot, vs.instance))
                .or_insert(Shadow { vs, due });
            if vs.play_seq >= entry.vs.play_seq {
                *entry = Shadow { vs, due };
            }
            // Open hand-back window: relay records for the rejoiner's
            // disks straight to it while its own lead pipeline warms up
            // (receipt idempotence makes the extra copy safe).
            if self.ring.handback_relay(loc.cub, now) {
                let me = sh.cub_node(self.id);
                sh.send_control(now, me, sh.cub_node(loc.cub), Message::ViewerState(vs));
            }
        }
    }

    /// Begins normal service of `vs` on local disk `disk`.
    fn accept_service(&mut self, sh: &mut Shared, now: SimTime, vs: ViewerState, disk: DiskId) {
        let me = self.id.raw();
        let (slot, viewer, inc) = vkey(&vs);
        match self.view.apply_viewer_state(vs, now) {
            ViewApply::Inserted | ViewApply::Updated => {}
            ViewApply::Duplicate => {
                sh.tracer.record(
                    now,
                    me,
                    TraceEvent::VsDuplicate {
                        slot,
                        viewer,
                        inc,
                        play_seq: vs.play_seq,
                    },
                );
                return;
            }
            ViewApply::Blocked => {
                sh.tracer
                    .record(now, me, TraceEvent::VsBlocked { slot, viewer, inc });
                return;
            }
            ViewApply::Conflict => {
                sh.tracer
                    .record(now, me, TraceEvent::VsConflict { slot, viewer, inc });
                sh.metrics.violations.push(format!(
                    "{}: conflicting viewer state for {} in {}",
                    self.id, vs.instance, vs.slot
                ));
                return;
            }
        }
        let key = ServiceKey {
            slot: vs.slot,
            instance: vs.instance,
            kind: KindKey::Primary,
            play_seq: vs.play_seq,
        };
        if self.by_key.contains_key(&key) {
            // Already servicing this entry (double-forward duplicate).
            sh.tracer.record(
                now,
                me,
                TraceEvent::VsDuplicate {
                    slot,
                    viewer,
                    inc,
                    play_seq: vs.play_seq,
                },
            );
            return;
        }
        let send_at = sh.params.slot_send_time(disk, vs.slot, now);
        // A record can only legitimately be up to maxVStateLead early plus
        // one block play time per bridged failure (the cover chain advances
        // past each dead disk instantly); a send time further out means
        // the record arrived *after* its due time and wrapped to the next
        // schedule lap. §4.1.2 prescribes discarding such late arrivals
        // (the viewer is "spontaneously descheduled" in the worst case).
        // On rings too short to tell the two cases apart, skip the guard.
        let max_legit_lead = sh.cfg.max_vstate_lead
            + sh.params
                .block_play_time()
                .mul_u64(u64::from(sh.params.stripe().decluster) + 1);
        if max_legit_lead < sh.params.schedule_len()
            && send_at.saturating_since(now) > max_legit_lead
        {
            sh.tracer.record(
                now,
                me,
                TraceEvent::VsLate {
                    slot,
                    viewer,
                    inc,
                    play_seq: vs.play_seq,
                },
            );
            self.view.retire(vs.slot, &vs);
            sh.metrics.loss.failover_lost += 1;
            return;
        }
        sh.tracer.record(
            now,
            me,
            TraceEvent::VsAccept {
                slot,
                viewer,
                inc,
                play_seq: vs.play_seq,
                position: u64::from(vs.position.raw()),
            },
        );
        if self.rejoined_at.take().is_some() {
            // First primary acceptance of this cub's new life: the rejoin
            // has converged (the ring is feeding it schedule state again).
            sh.tracer
                .record(now, me, TraceEvent::RejoinDone { cub: me });
        }
        let meta = sh.catalog.get(vs.file).copied().expect("file known");
        // Under the coded backend the home's primary extent is one shard
        // (1/k of the block): a shorter read, a shorter paced send.
        let (payload, send_duration) = match &sh.coded {
            Some(c) => (
                meta.payload_size
                    .div_u64_ceil(u64::from(c.placement.k()))
                    .as_bytes(),
                sh.params
                    .block_play_time()
                    .div_u64(u64::from(c.placement.k())),
            ),
            None => (meta.payload_size.as_bytes(), sh.params.block_play_time()),
        };
        let token = self.alloc_token();
        self.active.insert(
            token,
            Active::new(
                vs,
                sh.params.stripe().local_index_of(disk),
                send_at,
                send_duration,
                payload,
                false,
            ),
        );
        self.by_key.insert(key, token);
        // §3.1: "the disks run at least one block service time ahead of the
        // schedule. Usually, they run a little earlier, trading off buffer
        // usage to cover for slight variations in disk … performance."
        // Steady-state records arrive minVStateLead+ early, so their reads
        // go out two scheduling leads ahead; a freshly inserted viewer's
        // first read is issued immediately (it has only the scheduling
        // lead).
        let read_at = send_at
            .saturating_sub(sh.cfg.scheduling_lead.mul_u64(2))
            .max(now);
        sh.queue.schedule(
            read_at,
            Event::ReadIssue {
                cub: self.id,
                token,
            },
        );
        sh.queue.schedule(
            send_at,
            Event::SendDue {
                cub: self.id,
                token,
            },
        );
        sh.metrics.loss.blocks_scheduled += 1;
        if sh.coded.is_some() {
            self.fan_out_coded(sh, now, vs, disk, send_at);
        }
        // If waiting for the next periodic pass would let the successor's
        // lead fall below minVStateLead ("Cubs endeavor to keep the
        // schedule updated at least minVStateLead into the future"),
        // forward promptly instead of batching. This is what keeps freshly
        // inserted streams alive while their lead pipeline builds up.
        let successor_breach =
            (send_at + sh.params.block_play_time()).saturating_sub(sh.cfg.min_vstate_lead);
        if successor_breach < self.next_forward_pass {
            sh.queue.schedule(
                now + SimDuration::from_millis(1),
                Event::ForwardPass { cub: self.id },
            );
        }
    }

    /// Acting-successor work for a viewer state addressed to a failed disk:
    /// create mirror viewer states for its declustered pieces, and keep the
    /// record propagating (§4.1.1, Figure 5).
    fn cover_failed_disk(
        &mut self,
        sh: &mut Shared,
        now: SimTime,
        vs: ViewerState,
        failed_disk: DiskId,
    ) {
        if sh.coded.is_some() {
            self.cover_failed_disk_coded(sh, now, vs, failed_disk);
            return;
        }
        let created_key = (vs.slot, vs.instance, vs.position.raw());
        if self.mirrors_created.insert(created_key) {
            let (slot, viewer, inc) = vkey(&vs);
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::MirrorCreate {
                    slot,
                    viewer,
                    inc,
                    failed_disk: failed_disk.raw(),
                },
            );
            sh.metrics.loss.blocks_scheduled += 1;
            // "When the succeeding cub makes this decision, it creates a
            // special kind of viewer state called a mirror viewer state"
            // (§4.1.1). Mirror viewer states then propagate along the ring
            // of piece-holding cubs "much like normal ones": each holder
            // serves its piece and forwards the record for the next piece.
            let mut mvs = vs;
            mvs.kind = StreamKind::Mirror {
                failed_disk,
                piece: 0,
            };
            self.on_mirror_state(sh, now, mvs, failed_disk, 0);
        }
        // Continue normal propagation past the failed machine: the next
        // block is due on the disk after the failed one, which may be ours
        // or (with consecutive failures) dead as well — recurse.
        self.on_primary_state(sh, now, vs.advanced(1));
    }

    /// Accepts mirror service for the declustered piece this cub holds,
    /// then forwards the record toward the next piece's holder.
    ///
    /// The embedded `piece` is the *next expected* piece; the receiving cub
    /// re-derives which piece it actually holds from ring geometry (with
    /// consecutive failures the expected holder may be dead, in which case
    /// the skipped pieces are unrecoverable, §2.3).
    fn on_mirror_state(
        &mut self,
        sh: &mut Shared,
        now: SimTime,
        mut vs: ViewerState,
        failed_disk: DiskId,
        expected_piece: u32,
    ) {
        let stripe = sh.params.stripe();
        // Which piece of this failed disk lives on one of our disks?
        // Consecutive disks are on consecutive cubs, so at most one does.
        let Some(piece) = (0..stripe.decluster)
            .find(|&i| stripe.cub_of(stripe.disk_after(failed_disk, i + 1)) == self.id)
        else {
            return; // No piece of this block here (over-forwarded copy).
        };
        if piece < expected_piece {
            return; // A double-forwarded duplicate for a piece already done.
        }
        // Pieces between the expected one and ours whose holders are dead
        // are unrecoverable (double-forwarded copies also skip ahead, but
        // those skipped holders are alive and serve from their own copies —
        // only dead holders count as losses) — unless the spare shield
        // holds ready copies of the span, in which case the dead holder's
        // record routes to the serving spare instead.
        for j in expected_piece..piece {
            let holder_cub = stripe.cub_of(stripe.disk_after(failed_disk, j + 1));
            if self.ring.believes_failed(holder_cub)
                && !self.route_to_shield(sh, now, vs, failed_disk, j)
            {
                sh.metrics.loss.failover_lost += 1;
            }
        }
        let holder = stripe.disk_after(failed_disk, piece + 1);
        vs.kind = StreamKind::Mirror { failed_disk, piece };
        match self.view.apply_viewer_state(vs, now) {
            ViewApply::Inserted | ViewApply::Updated => {}
            _ => return,
        }
        let key = ServiceKey {
            slot: vs.slot,
            instance: vs.instance,
            kind: KindKey::Mirror(piece),
            play_seq: vs.play_seq,
        };
        if self.by_key.contains_key(&key) {
            return;
        }
        // Piece i goes out i/decluster of a block play time after the
        // block's nominal send time (§4.1.1 mirror timing).
        let block_due = sh.params.slot_send_time(failed_disk, vs.slot, now);
        // Same staleness rule as primary acceptance: a "next" due time more
        // than the maximum legitimate lead away means the block's real due
        // time already passed (it wrapped to the next lap) — the block is
        // lost, not a minute late.
        let max_legit_lead = sh.cfg.max_vstate_lead
            + sh.params
                .block_play_time()
                .mul_u64(u64::from(stripe.decluster) + 1);
        let (slot, viewer, inc) = vkey(&vs);
        if max_legit_lead < sh.params.schedule_len()
            && block_due.saturating_since(now) > max_legit_lead
        {
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::VsLate {
                    slot,
                    viewer,
                    inc,
                    play_seq: vs.play_seq,
                },
            );
            sh.metrics.loss.failover_lost += 1;
            self.view.retire(vs.slot, &vs);
            return;
        }
        let piece_gap = sh
            .params
            .block_play_time()
            .div_u64(u64::from(stripe.decluster));
        let send_at = block_due + piece_gap.mul_u64(u64::from(piece));
        if send_at <= now + SimDuration::from_millis(5) {
            // Too late to read and send this piece.
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::VsLate {
                    slot,
                    viewer,
                    inc,
                    play_seq: vs.play_seq,
                },
            );
            sh.metrics.loss.failover_lost += 1;
            self.view.retire(vs.slot, &vs);
            return;
        }
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::MirrorAccept {
                slot,
                viewer,
                inc,
                piece,
            },
        );
        let meta = sh.catalog.get(vs.file).copied().expect("file known");
        let piece_payload = meta.payload_size.div_u64_ceil(u64::from(stripe.decluster));
        let token = self.alloc_token();
        self.active.insert(
            token,
            Active::new(
                vs,
                stripe.local_index_of(holder),
                send_at,
                piece_gap,
                piece_payload.as_bytes(),
                true, // Mirror records forward immediately (below), not in the periodic pass.
            ),
        );
        self.by_key.insert(key, token);
        // Mirror reads land on disks already running near saturation; issue
        // them extra-early ("the cubs take these timing differences into
        // consideration", §4.1.1) to ride out queueing convoys.
        let read_at = send_at
            .saturating_sub(sh.cfg.scheduling_lead.mul_u64(3))
            .max(now);
        sh.queue.schedule(
            read_at,
            Event::ReadIssue {
                cub: self.id,
                token,
            },
        );
        sh.queue.schedule(
            send_at,
            Event::SendDue {
                cub: self.id,
                token,
            },
        );

        // Forward the mirror record toward the next piece's holder, doubly
        // (mirror viewer states propagate "much like normal ones").
        if piece + 1 < stripe.decluster {
            let mut next = vs;
            next.kind = StreamKind::Mirror {
                failed_disk,
                piece: piece + 1,
            };
            let me = sh.cub_node(self.id);
            if let Some(succ) = self.next_living(self.id) {
                sh.tracer.record(
                    now,
                    self.id.raw(),
                    TraceEvent::VsForward {
                        dst: succ.raw(),
                        count: 1,
                        second: false,
                    },
                );
                sh.send_control(now, me, sh.cub_node(succ), Message::ViewerState(next));
                if sh.cfg.forwarding == ForwardingPolicy::Double {
                    if let Some(second) = self.next_living(succ) {
                        if second != self.id {
                            sh.tracer.record(
                                now,
                                self.id.raw(),
                                TraceEvent::VsForward {
                                    dst: second.raw(),
                                    count: 1,
                                    second: true,
                                },
                            );
                            sh.send_control(
                                now,
                                me,
                                sh.cub_node(second),
                                Message::ViewerState(next),
                            );
                        }
                    }
                }
            }
        }
        // Dead holders *ahead* of this piece whose spans the shield
        // holds: route their records to the serving spare now. The living
        // chain never reaches pieces past its last living holder (the
        // successor outside the span drops the record), and for mid-chain
        // dead holders the next living holder's receive loop routes a
        // duplicate — the spare's by-key table dedups it.
        for j in piece + 1..stripe.decluster {
            let holder_cub = stripe.cub_of(stripe.disk_after(failed_disk, j + 1));
            if self.ring.believes_failed(holder_cub) {
                self.route_to_shield(sh, now, vs, failed_disk, j);
            }
        }
    }

    /// Routes a dead holder's mirror record to the spare shielding its
    /// span, if one is ready. Returns whether the record was routed.
    fn route_to_shield(
        &self,
        sh: &mut Shared,
        now: SimTime,
        mut vs: ViewerState,
        failed_disk: DiskId,
        piece: u32,
    ) -> bool {
        let Some(spare) = sh.shield.serving_spare(failed_disk, piece) else {
            return false;
        };
        vs.kind = StreamKind::Mirror { failed_disk, piece };
        let me = sh.cub_node(self.id);
        sh.send_control(now, me, sh.cub_node(spare), Message::ViewerState(vs));
        true
    }

    /// Shield service entry: a record routed to this spare because a
    /// mirror piece's normal holder is dead. Only records for spans this
    /// spare actually holds ready copies of are served; anything else is
    /// an over-forwarded duplicate and drops.
    fn on_shield_state(&mut self, sh: &mut Shared, now: SimTime, vs: ViewerState) {
        let StreamKind::Mirror { failed_disk, piece } = vs.kind else {
            return;
        };
        if sh.shield.serving_spare(failed_disk, piece) != Some(self.id) {
            return;
        }
        self.serve_shielded_piece(sh, now, vs, failed_disk, piece);
    }

    /// Serves one shielded mirror piece in a dead holder's place: the
    /// same acceptance, timing, and too-late rules as
    /// [`Self::on_mirror_state`], minus the span-geometry derivation
    /// (the spare is not in the span — the routed record already names
    /// its piece) and minus forwarding (the living holders' chain keeps
    /// propagating the record; the spare only fills dead holders' gaps).
    fn serve_shielded_piece(
        &mut self,
        sh: &mut Shared,
        now: SimTime,
        vs: ViewerState,
        failed_disk: DiskId,
        piece: u32,
    ) {
        let stripe = sh.params.stripe();
        match self.view.apply_viewer_state(vs, now) {
            ViewApply::Inserted | ViewApply::Updated => {}
            _ => return,
        }
        let key = ServiceKey {
            slot: vs.slot,
            instance: vs.instance,
            kind: KindKey::Mirror(piece),
            play_seq: vs.play_seq,
        };
        if self.by_key.contains_key(&key) {
            return;
        }
        let block_due = sh.params.slot_send_time(failed_disk, vs.slot, now);
        let max_legit_lead = sh.cfg.max_vstate_lead
            + sh.params
                .block_play_time()
                .mul_u64(u64::from(stripe.decluster) + 1);
        let (slot, viewer, inc) = vkey(&vs);
        let piece_gap = sh
            .params
            .block_play_time()
            .div_u64(u64::from(stripe.decluster));
        let send_at = block_due + piece_gap.mul_u64(u64::from(piece));
        let wrapped = max_legit_lead < sh.params.schedule_len()
            && block_due.saturating_since(now) > max_legit_lead;
        if wrapped || send_at <= now + SimDuration::from_millis(5) {
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::VsLate {
                    slot,
                    viewer,
                    inc,
                    play_seq: vs.play_seq,
                },
            );
            sh.metrics.loss.failover_lost += 1;
            self.view.retire(vs.slot, &vs);
            return;
        }
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::MirrorAccept {
                slot,
                viewer,
                inc,
                piece,
            },
        );
        let meta = sh.catalog.get(vs.file).copied().expect("file known");
        let piece_payload = meta.payload_size.div_u64_ceil(u64::from(stripe.decluster));
        let token = self.alloc_token();
        self.active.insert(
            token,
            Active::new(
                vs,
                // The copy's extent lives on the spare's local disk that
                // mirrors the failed home's local index.
                stripe.local_index_of(failed_disk),
                send_at,
                piece_gap,
                piece_payload.as_bytes(),
                true, // Shield records never enter the forward pass.
            ),
        );
        self.by_key.insert(key, token);
        let read_at = send_at
            .saturating_sub(sh.cfg.scheduling_lead.mul_u64(3))
            .max(now);
        sh.queue.schedule(
            read_at,
            Event::ReadIssue {
                cub: self.id,
                token,
            },
        );
        sh.queue.schedule(
            send_at,
            Event::SendDue {
                cub: self.id,
                token,
            },
        );
    }

    // --- Coded-backend service (tiger-coded) --------------------------------

    /// Coded-backend fan-out, run by the home after it accepts a block's
    /// primary record: the home's own entry serves shard 0 from its
    /// primary region; the other `k − 1` of the block's `k` sends are
    /// assigned to holders chosen from the `2k − 1` remote shard disks by
    /// the per-disk load index — mirroring's fixed partner lookup becomes
    /// an admission-aware choice. Chosen holders are driven by unicast
    /// coded viewer states, and the block's send window is reserved on
    /// every participating disk so later choices see this one's load.
    fn fan_out_coded(
        &mut self,
        sh: &mut Shared,
        now: SimTime,
        vs: ViewerState,
        home: DiskId,
        block_due: SimTime,
    ) {
        let (k, n) = match sh.coded.as_ref() {
            Some(c) => (c.placement.k(), c.placement.n()),
            None => return,
        };
        let stripe = sh.params.stripe();
        // Rank candidates: believed-alive holders, least loaded at the
        // block's ring position first, shard index breaking ties. Every
        // input is deterministic, so the choice is too.
        let mut ranked: Vec<(u64, u32)> = Vec::new();
        if let Some(c) = sh.coded.as_ref() {
            for j in 1..n {
                let d = stripe.disk_after(home, j);
                if self.ring.believes_failed(stripe.cub_of(d)) {
                    continue;
                }
                ranked.push((c.load_at(d, block_due).bits_per_sec(), j));
            }
        }
        ranked.sort_unstable();
        let want = k as usize - 1;
        if ranked.len() < want {
            // Too few surviving holders to assemble the block: the sends
            // that do go out cannot complete it at the client.
            sh.metrics.loss.failover_lost += 1;
        }
        ranked.truncate(want);
        let key = coded_load_key(&vs);
        if let Some(c) = sh.coded.as_mut() {
            c.reserve(home, key, block_due, vs.bitrate);
            for &(_, j) in &ranked {
                let d = stripe.disk_after(home, j);
                c.reserve(d, key, block_due, vs.bitrate);
            }
        }
        let me = sh.cub_node(self.id);
        for (_, j) in ranked {
            let mut cvs = vs;
            cvs.kind = StreamKind::Coded {
                home_disk: home,
                shard: j,
            };
            let holder_cub = stripe.cub_of(stripe.disk_after(home, j));
            if holder_cub == self.id {
                self.on_coded_state(sh, now, cvs, home, j);
            } else {
                sh.send_control(now, me, sh.cub_node(holder_cub), Message::ViewerState(cvs));
            }
        }
    }

    /// Acting-successor cover under the coded backend: shard 0 died with
    /// the home, so pick `k` of the block's surviving remote shard
    /// holders — by the same load-ranked choice the home makes in healthy
    /// operation — and drive them with coded viewer states, then keep the
    /// record propagating past the failed machine.
    fn cover_failed_disk_coded(
        &mut self,
        sh: &mut Shared,
        now: SimTime,
        vs: ViewerState,
        failed_disk: DiskId,
    ) {
        let created_key = (vs.slot, vs.instance, vs.position.raw());
        if self.mirrors_created.insert(created_key) {
            let (slot, viewer, inc) = vkey(&vs);
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::CodedRepair {
                    slot,
                    viewer,
                    inc,
                    failed_disk: failed_disk.raw(),
                },
            );
            sh.metrics.loss.blocks_scheduled += 1;
            let (k, n) = sh
                .coded
                .as_ref()
                .map(|c| (c.placement.k(), c.placement.n()))
                .expect("coded mode");
            let stripe = sh.params.stripe();
            let block_due = sh.params.slot_send_time(failed_disk, vs.slot, now);
            let mut ranked: Vec<(u64, u32)> = Vec::new();
            if let Some(c) = sh.coded.as_ref() {
                for j in 1..n {
                    let d = stripe.disk_after(failed_disk, j);
                    if self.ring.believes_failed(stripe.cub_of(d)) {
                        continue;
                    }
                    ranked.push((c.load_at(d, block_due).bits_per_sec(), j));
                }
            }
            ranked.sort_unstable();
            if ranked.len() < k as usize {
                // Fewer than k surviving shards: the block is gone (the
                // code's loss window), not worth partial sends.
                sh.metrics.loss.failover_lost += 1;
            } else {
                ranked.truncate(k as usize);
                let me = sh.cub_node(self.id);
                for (_, j) in ranked {
                    let mut cvs = vs;
                    cvs.kind = StreamKind::Coded {
                        home_disk: failed_disk,
                        shard: j,
                    };
                    let holder_cub = stripe.cub_of(stripe.disk_after(failed_disk, j));
                    if holder_cub == self.id {
                        self.on_coded_state(sh, now, cvs, failed_disk, j);
                    } else {
                        sh.send_control(
                            now,
                            me,
                            sh.cub_node(holder_cub),
                            Message::ViewerState(cvs),
                        );
                    }
                }
            }
        }
        // Continue normal propagation past the failed machine (§2.3), the
        // same advance the mirror cover makes.
        self.on_primary_state(sh, now, vs.advanced(1));
    }

    /// Accepts unicast coded-shard service: this cub holds `shard` of the
    /// block homed on `home_disk` and was chosen by the block's
    /// coordinator (the home in healthy operation, the acting successor
    /// after a failure) to deliver it.
    ///
    /// Unlike mirror viewer states, coded records do not chain along a
    /// piece ring: the coordinator picked the exact holders, so each
    /// record is final and never forwarded.
    fn on_coded_state(
        &mut self,
        sh: &mut Shared,
        now: SimTime,
        mut vs: ViewerState,
        home_disk: DiskId,
        shard: u32,
    ) {
        let Some((k, n)) = sh
            .coded
            .as_ref()
            .map(|c| (c.placement.k(), c.placement.n()))
        else {
            return; // Stray coded record under mirroring.
        };
        if shard == 0 || shard >= n {
            return;
        }
        let stripe = sh.params.stripe();
        let holder = stripe.disk_after(home_disk, shard);
        if stripe.cub_of(holder) != self.id {
            return; // Misrouted copy.
        }
        vs.kind = StreamKind::Coded { home_disk, shard };
        match self.view.apply_viewer_state(vs, now) {
            ViewApply::Inserted | ViewApply::Updated => {}
            _ => return,
        }
        let key = ServiceKey {
            slot: vs.slot,
            instance: vs.instance,
            kind: KindKey::Coded(shard),
            play_seq: vs.play_seq,
        };
        if self.by_key.contains_key(&key) {
            return;
        }
        let block_due = sh.params.slot_send_time(home_disk, vs.slot, now);
        let (slot, viewer, inc) = vkey(&vs);
        // Same staleness rule as primary and mirror acceptance.
        let max_legit_lead = sh.cfg.max_vstate_lead
            + sh.params
                .block_play_time()
                .mul_u64(u64::from(stripe.decluster) + 1);
        if max_legit_lead < sh.params.schedule_len()
            && block_due.saturating_since(now) > max_legit_lead
        {
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::VsLate {
                    slot,
                    viewer,
                    inc,
                    play_seq: vs.play_seq,
                },
            );
            sh.metrics.loss.failover_lost += 1;
            self.view.retire(vs.slot, &vs);
            return;
        }
        // Shard sends stagger across the block play time by shard index,
        // so whichever subset the coordinator picked, every send fits in
        // the block's play window: the highest possible shard (2k − 1)
        // starts at bpt − bpt/k and ends exactly at block_due + bpt.
        let shard_time = sh.params.block_play_time().div_u64(u64::from(k));
        let gap = (sh.params.block_play_time() - shard_time).div_u64(u64::from(n - 1));
        let send_at = block_due + gap.mul_u64(u64::from(shard));
        if send_at <= now + SimDuration::from_millis(5) {
            // Too late to read and send this shard.
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::VsLate {
                    slot,
                    viewer,
                    inc,
                    play_seq: vs.play_seq,
                },
            );
            sh.metrics.loss.failover_lost += 1;
            self.view.retire(vs.slot, &vs);
            return;
        }
        if self.ring.believes_failed(stripe.cub_of(home_disk)) {
            // Degraded service: this shard stands in for data whose home
            // machine is down.
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::DegradedPieceRead {
                    slot,
                    viewer,
                    inc,
                    shard,
                },
            );
        }
        let meta = sh.catalog.get(vs.file).copied().expect("file known");
        let shard_payload = meta.payload_size.div_u64_ceil(u64::from(k));
        let token = self.alloc_token();
        self.active.insert(
            token,
            Active::new(
                vs,
                stripe.local_index_of(holder),
                send_at,
                shard_time,
                shard_payload.as_bytes(),
                true, // Coded records never forward: the fan-out is complete.
            ),
        );
        self.by_key.insert(key, token);
        // Like mirror reads: issue extra-early to ride out queueing
        // convoys on disks already running near saturation.
        let read_at = send_at
            .saturating_sub(sh.cfg.scheduling_lead.mul_u64(3))
            .max(now);
        sh.queue.schedule(
            read_at,
            Event::ReadIssue {
                cub: self.id,
                token,
            },
        );
        sh.queue.schedule(
            send_at,
            Event::SendDue {
                cub: self.id,
                token,
            },
        );
    }

    // --- Disk service ------------------------------------------------------

    /// Issues the disk read for `token` (one scheduling lead early).
    ///
    /// Reads are issued as early as the buffer cache allows ("trading off
    /// buffer usage to cover for slight variations in disk and I/O system
    /// performance", §3.1): when the 20 MB cache is full, the read is
    /// retried shortly, down to a hard floor of one scheduling lead before
    /// the send.
    pub fn on_read_issue(&mut self, sh: &mut Shared, now: SimTime, token: ServiceToken) {
        if self.failed && !sh.shield.is_serving_spare(self.id) {
            return;
        }
        let Some(entry) = self.active.get_mut(&token) else {
            return; // Descheduled before the read was due.
        };
        if entry.dropped || entry.read_issued {
            return;
        }
        let must_issue_by = entry.send_at.saturating_sub(sh.cfg.scheduling_lead);
        if now < must_issue_by
            && self.buffer_bytes_in_use + u64::from(sh.cfg.block_size().as_bytes() as u32)
                > sh.cfg.buffer_cache.as_bytes()
        {
            // Cache full: retry soon, no later than the hard floor.
            let retry = (now + SimDuration::from_millis(50)).min(must_issue_by);
            sh.queue.schedule(
                retry,
                Event::ReadIssue {
                    cub: self.id,
                    token,
                },
            );
            return;
        }
        let stripe = sh.params.stripe();
        let local = entry.disk_local;
        let disk_id = match entry.vs.kind {
            // A shield-serving spare's copies are keyed under the failed
            // home disk: spares have no ids in the stripe's disk
            // namespace (only their physical `local` index is real).
            StreamKind::Mirror { failed_disk, .. } if self.failed => failed_disk,
            _ => stripe.disk_of(self.id, local),
        };
        if entry.vs.kind == StreamKind::Primary {
            // Buffer-cache check (§5 measured <0.05% hits: staggered
            // viewers rarely re-read a block while it is still resident).
            self.cache_lookups.incr();
            let key = (disk_id, entry.vs.file, entry.vs.position);
            if self.cache_resident.contains(&key) {
                self.cache_hits.incr();
                entry.read_ready = true;
                return;
            }
        }
        let lookup = match entry.vs.kind {
            StreamKind::Primary => {
                self.index
                    .lookup_primary(disk_id, entry.vs.file, entry.vs.position)
            }
            StreamKind::Mirror { piece, .. } => {
                self.index
                    .lookup_secondary(disk_id, entry.vs.file, entry.vs.position, piece)
            }
            StreamKind::Coded { shard, .. } => {
                self.index
                    .lookup_secondary(disk_id, entry.vs.file, entry.vs.position, shard)
            }
        };
        let Some(extent) = lookup else {
            // Content not on this disk (stale record after a restripe).
            // The block is lost but the viewer continues.
            entry.missed = true;
            sh.metrics.loss.failover_lost += 1;
            return;
        };
        let req = DiskRequest {
            offset: extent.offset(),
            len: extent.length(),
            kind: match entry.vs.kind {
                StreamKind::Primary => RequestKind::Primary,
                // Coded shards 1..2k live in the secondary region too.
                StreamKind::Mirror { .. } | StreamKind::Coded { .. } => RequestKind::Mirror,
            },
        };
        match self.disks[local as usize].submit(now, req) {
            Ok(done) => {
                let (slot, viewer, inc) = vkey(&entry.vs);
                sh.tracer.record(
                    now,
                    self.id.raw(),
                    TraceEvent::DiskIssue {
                        slot,
                        viewer,
                        inc,
                        disk: disk_id.raw(),
                    },
                );
                entry.read_issued = true;
                entry.buffer_held = true;
                entry.read_bytes = req.len.as_bytes();
                self.buffer_bytes_in_use += entry.read_bytes;
                self.peak_buffer_bytes = self.peak_buffer_bytes.max(self.buffer_bytes_in_use);
                if entry.vs.kind == StreamKind::Primary {
                    let key = (disk_id, entry.vs.file, entry.vs.position);
                    self.cache_resident.push_back(key);
                    let max_resident = (sh.cfg.buffer_cache.as_bytes()
                        / sh.cfg.block_size().as_bytes().max(1))
                        as usize;
                    while self.cache_resident.len() > max_resident {
                        self.cache_resident.pop_front();
                    }
                }
                sh.queue.schedule(
                    done,
                    Event::DiskDone {
                        cub: self.id,
                        token,
                    },
                );
            }
            Err(DiskError::Failed) => {
                entry.missed = true;
                sh.metrics.loss.failover_lost += 1;
            }
            Err(DiskError::Transient) => {
                // Injected transient read error: the block is lost (no
                // retry path — the send deadline leaves no slack for one),
                // but the disk and the viewer both continue.
                entry.missed = true;
                sh.metrics.loss.failover_lost += 1;
                let (slot, viewer, inc) = vkey(&entry.vs);
                sh.tracer.record(
                    now,
                    self.id.raw(),
                    TraceEvent::DiskTransient {
                        slot,
                        viewer,
                        inc,
                        disk: disk_id.raw(),
                    },
                );
            }
            Err(DiskError::OutOfRange) => {
                unreachable!("index produced an out-of-range extent");
            }
        }
    }

    /// Handles a disk-read completion.
    pub fn on_disk_done(&mut self, sh: &mut Shared, now: SimTime, token: ServiceToken) {
        if self.failed && !sh.shield.is_serving_spare(self.id) {
            return;
        }
        let Some(entry) = self.active.get_mut(&token) else {
            // Unreachable in a correct run: entries with outstanding reads
            // are never force-removed (see the deschedule path).
            debug_assert!(false, "disk completion for a vanished service");
            return;
        };
        if self.disks[entry.disk_local as usize].is_failed() {
            // The disk died while this read was in flight: the data never
            // arrived. The block is lost; the viewer continues.
            entry.missed = true;
            sh.metrics.loss.failover_lost += 1;
            if self.active.get(&token).is_some_and(Active::finished) {
                self.reclaim(now, token, sh.coded.as_mut());
            }
            return;
        }
        entry.read_ready = true;
        let (slot, viewer, inc) = vkey(&entry.vs);
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::DiskDone { slot, viewer, inc },
        );
        let disk_local = entry.disk_local;
        // The buffer pool recycles aggressively (§2.2's zero-copy path
        // keeps no long-lived cache), so a block is shareable only while
        // its read is in flight — I/O coalescing, which is what keeps the
        // §5 buffer-cache hit rate "less than 0.05%".
        if entry.vs.kind == StreamKind::Primary {
            let disk_id = sh.params.stripe().disk_of(self.id, disk_local);
            let key = (disk_id, entry.vs.file, entry.vs.position);
            if let Some(pos) = self.cache_resident.iter().position(|k| *k == key) {
                self.cache_resident.remove(pos);
            }
        }
        self.disks[disk_local as usize].complete(now);
        if self.active.get(&token).is_some_and(Active::finished) {
            self.reclaim(now, token, sh.coded.as_mut());
        }
    }

    /// The block (or piece) for `token` is due at the network.
    pub fn on_send_due(&mut self, sh: &mut Shared, now: SimTime, token: ServiceToken) {
        if self.failed && !sh.shield.is_serving_spare(self.id) {
            return;
        }
        let Some(entry) = self.active.get_mut(&token) else {
            return; // Descheduled.
        };
        if entry.dropped {
            return;
        }
        let (slot, viewer, inc) = vkey(&entry.vs);
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::SendDue {
                slot,
                viewer,
                inc,
                ok: entry.read_ready && !entry.missed,
            },
        );
        if entry.missed {
            // The read path already declared this block lost.
            if entry.finished() {
                self.reclaim(now, token, sh.coded.as_mut());
            }
            return;
        }
        if !entry.read_ready {
            // "the server failed to place 15 blocks on the network, each
            // because the disk read hadn't completed in time" — the block
            // is dropped, not sent late, and the viewer continues with its
            // subsequent blocks (the entry still gets forwarded).
            sh.metrics.loss.server_missed += 1;
            if entry.vs.kind != StreamKind::Primary {
                sh.metrics.loss.mirror_missed += 1;
            }
            entry.missed = true;
            if entry.finished() {
                self.reclaim(now, token, sh.coded.as_mut());
            }
            return;
        }
        let rate = entry.vs.bitrate;
        let node = sh.cub_node(self.id);
        let ok = sh.net.begin_stream(now, node, rate);
        if !ok {
            // NIC overcommitted — the schedule should prevent this; report
            // it as a violation but keep sending (degraded).
            sh.metrics
                .violations
                .push(format!("{}: NIC overcommit at {now}", self.id));
        }
        entry.transmitting = true;
        entry.sent = true;
        if entry.vs.kind == StreamKind::Primary {
            if let Some(omni) = sh.omniscient.as_mut() {
                omni.on_send(&entry.vs, now);
            }
        }
        let done_at = now + entry.send_duration;
        sh.queue.schedule(
            done_at,
            Event::SendDone {
                cub: self.id,
                token,
            },
        );
    }

    /// A paced transmission finished: free the NIC, deliver to the client.
    pub fn on_send_done(&mut self, sh: &mut Shared, now: SimTime, token: ServiceToken) {
        if self.failed && !sh.shield.is_serving_spare(self.id) {
            return;
        }
        let Some(entry) = self.active.get(&token).copied() else {
            return;
        };
        let (slot, viewer, inc) = vkey(&entry.vs);
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::SendDone { slot, viewer, inc },
        );
        let node = sh.cub_node(self.id);
        sh.net
            .end_stream(now, node, entry.vs.bitrate, entry.payload);
        sh.metrics.loss.blocks_sent += 1;
        // Deliver to the client (receive time = last byte arrival, §5).
        let client = tiger_net::NetNode(entry.vs.client);
        let at = sh.net.send_data(now, node, client);
        sh.trace_net_injections(now);
        if let Some(at) = at {
            let (piece, total) = match entry.vs.kind {
                // Under the coded backend the home's primary send is
                // shard 0 of the k the client assembles.
                StreamKind::Primary => match &sh.coded {
                    Some(c) => (Some(0), c.placement.k()),
                    None => (None, 1),
                },
                StreamKind::Mirror { piece, .. } => (Some(piece), sh.params.stripe().decluster),
                StreamKind::Coded { shard, .. } => (
                    Some(shard),
                    sh.coded.as_ref().map_or(1, |c| c.placement.k()),
                ),
            };
            sh.queue.schedule(
                at,
                Event::Deliver {
                    dst: client,
                    msg: Message::StreamData {
                        instance: entry.vs.instance,
                        block: entry.vs.position.raw(),
                        piece,
                        total_pieces: total,
                        bytes: entry.payload,
                    },
                },
            );
        }
        self.view.retire(entry.vs.slot, &entry.vs);
        if let Some(e) = self.active.get_mut(&token) {
            e.transmitting = false;
        }
        if self.active.get(&token).is_some_and(Active::finished) {
            self.reclaim(now, token, sh.coded.as_mut());
        }
        // Otherwise forwarding has not happened yet (fresh inserts with
        // very short leads); the next forward pass reclaims the entry.
    }

    /// Removes a finished or cancelled service, returning its buffer.
    /// Serviced primary records are retained in the retired log for one
    /// failure-detection window (gap bridging, §2.3). Under the coded
    /// backend, retiring the home's primary entry releases the block's
    /// shard reservations from the per-disk load rings (`coded` is `None`
    /// only at restripe cut-over, which rebuilds the rings wholesale).
    fn reclaim(&mut self, now: SimTime, token: ServiceToken, coded: Option<&mut CodedRuntime>) {
        if let Some(e) = self.active.remove(&token) {
            if e.buffer_held {
                self.buffer_bytes_in_use = self.buffer_bytes_in_use.saturating_sub(e.read_bytes);
            }
            let key = ServiceKey {
                slot: e.vs.slot,
                instance: e.vs.instance,
                kind: kind_key(e.vs.kind),
                play_seq: e.vs.play_seq,
            };
            self.by_key.remove(&key);
            if e.vs.kind == StreamKind::Primary {
                if let Some(c) = coded {
                    let home = c.placement.config().disk_of(self.id, e.disk_local);
                    c.release(home, coded_load_key(&e.vs));
                }
            }
            if !e.dropped && e.vs.kind == StreamKind::Primary {
                self.retired_log.push((now, e.vs));
            }
        }
    }

    fn alloc_token(&mut self) -> ServiceToken {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    // --- Forwarding (§4.1.1) ------------------------------------------------

    /// Periodic batching pass: forward viewer states whose receiver lead
    /// has dropped to `maxVStateLead`, to the successor and (policy
    /// permitting) the second successor.
    pub fn on_forward_pass(&mut self, sh: &mut Shared, now: SimTime) {
        if self.failed {
            return;
        }
        let mut batch: Vec<ViewerState> = Vec::new();
        let mut finished: Vec<ViewerInstance> = Vec::new();
        for entry in self.active.values_mut() {
            if entry.forwarded || entry.dropped || entry.vs.kind != StreamKind::Primary {
                continue;
            }
            let due_next = entry.send_at + sh.params.block_play_time();
            if now < due_next.saturating_sub(sh.cfg.max_vstate_lead) {
                continue;
            }
            entry.forwarded = true;
            let advanced = entry.vs.advanced(1);
            let meta = sh.catalog.get(advanced.file).copied();
            let at_eof = meta.is_none_or(|m| advanced.position.raw() >= m.num_blocks);
            if at_eof {
                finished.push(advanced.instance);
            } else {
                batch.push(advanced);
            }
        }
        let done: Vec<ServiceToken> = self
            .active
            .iter()
            .filter(|(_, e)| e.finished())
            .map(|(&t, _)| t)
            .collect();
        for token in done {
            self.reclaim(now, token, sh.coded.as_mut());
        }
        for instance in finished {
            if self.eof_sent.insert(instance) {
                sh.send_to_controllers(
                    now,
                    sh.cub_node(self.id),
                    Message::ViewerFinished { instance },
                );
            }
        }
        if !batch.is_empty() {
            let me = sh.cub_node(self.id);
            if let Some(succ) = self.next_living(self.id) {
                let batch: std::sync::Arc<[ViewerState]> = batch.into();
                sh.tracer.record(
                    now,
                    self.id.raw(),
                    TraceEvent::VsForward {
                        dst: succ.raw(),
                        count: batch.len() as u32,
                        second: false,
                    },
                );
                sh.send_control(
                    now,
                    me,
                    sh.cub_node(succ),
                    Message::ViewerStates(batch.clone()),
                );
                if sh.cfg.forwarding == ForwardingPolicy::Double {
                    if let Some(second) = self.next_living(succ) {
                        if second != self.id {
                            sh.tracer.record(
                                now,
                                self.id.raw(),
                                TraceEvent::VsForward {
                                    dst: second.raw(),
                                    count: batch.len() as u32,
                                    second: true,
                                },
                            );
                            sh.send_control(
                                now,
                                me,
                                sh.cub_node(second),
                                Message::ViewerStates(batch),
                            );
                        }
                    }
                }
            }
        }
        // Shadow GC: drop records whose due time is well past.
        let horizon = now.saturating_sub(sh.cfg.deschedule_hold);
        self.shadows.retain(|_, s| s.due >= horizon);
        // Retired-log GC: keep one failure-detection window.
        crate::recovery::prune_retired(
            &mut self.retired_log,
            now,
            crate::recovery::retired_retention(&sh.cfg),
        );
        // Mirror-creation memory GC is keyed the same way; bound its size.
        if self.mirrors_created.len() > 100_000 {
            self.mirrors_created.clear();
        }
        if sh.tracer.on() {
            // Traced runs observe each hold expiry (at this pass's
            // granularity); gc_report is behaviorally identical to gc.
            let me = self.id.raw();
            let tracer = &mut sh.tracer;
            self.view.gc_report(now, |d| {
                tracer.record(
                    now,
                    me,
                    TraceEvent::DeschedExpire {
                        slot: d.slot.raw(),
                        viewer: d.instance.viewer.raw(),
                        inc: d.instance.incarnation,
                    },
                );
            });
        } else {
            self.view.gc(now);
        }
    }

    // --- Deschedules (§4.1.2) ------------------------------------------------

    fn on_deschedule(&mut self, sh: &mut Shared, now: SimTime, d: Deschedule, hops_left: u32) {
        let first_sighting = !self.view.holds_deschedule(&d);
        let hold_until = now + sh.cfg.deschedule_hold + sh.cfg.max_vstate_lead;
        self.view.apply_deschedule(d, now, hold_until);
        // Kill matching active services that have not yet gone out.
        let tokens: Vec<ServiceToken> = self
            .active
            .iter()
            .filter(|(_, e)| d.matches(&e.vs))
            .map(|(&t, _)| t)
            .collect();
        let mut killed = 0u32;
        for token in tokens {
            let entry = self.active.get_mut(&token).expect("token just listed");
            if entry.sent {
                continue; // Already went out; harmless.
            }
            entry.dropped = true;
            entry.forwarded = true; // Never forward a descheduled entry.
            killed += 1;
            if entry.finished() {
                self.reclaim(now, token, sh.coded.as_mut());
            }
            // Otherwise an outstanding read completes first; DiskDone
            // reclaims it then.
        }
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::DeschedApply {
                slot: d.slot.raw(),
                viewer: d.instance.viewer.raw(),
                inc: d.instance.incarnation,
                first: first_sighting,
                killed,
                hops_left,
            },
        );
        // Drop matching shadows and queued starts.
        self.shadows.retain(|_, s| !d.matches(&s.vs));
        self.ins.drop_instance(&d.instance);
        // Forward on first sighting, immediately (§4.1.2: deschedules are
        // not batched; they must outrun viewer states).
        if first_sighting && hops_left > 0 {
            let me = sh.cub_node(self.id);
            let msg = Message::Deschedule {
                request: d,
                hops_left: hops_left - 1,
            };
            if let Some(succ) = self.next_living(self.id) {
                sh.send_control(now, me, sh.cub_node(succ), msg.clone());
                if let Some(second) = self.next_living(succ) {
                    if second != self.id {
                        sh.send_control(now, me, sh.cub_node(second), msg);
                    }
                }
            }
        }
    }

    // --- Insertion (§4.1.3) -----------------------------------------------

    fn on_routed_start(
        &mut self,
        sh: &mut Shared,
        now: SimTime,
        pending: PendingStart,
        redundant: bool,
    ) {
        let carried = self.carries_instance(&pending.instance);
        if self.ins.on_routed_start(pending, redundant, carried) {
            self.schedule_insert_attempt(sh, now + SimDuration::from_nanos(1));
        }
    }

    /// Whether this cub already carries schedule state for `instance` —
    /// in its view, its active services, or the retired log. Receiving a
    /// routed start must be idempotent like viewer states are (§4.1.2):
    /// the network may duplicate a message, and a duplicate arriving
    /// after the original start was inserted must not insert the viewer
    /// into a second slot (every block would be delivered twice).
    fn carries_instance(&self, instance: &ViewerInstance) -> bool {
        self.view.iter().any(|(_, e)| e.instance == *instance)
            || self.active.values().any(|a| a.vs.instance == *instance)
            || self
                .retired_log
                .iter()
                .any(|(_, vs)| vs.instance == *instance)
    }

    /// Whether this cub has already serviced `vs.play_seq` (or a later
    /// block) of the instance — the staleness test behind the §4.1.2
    /// receipt idempotence in `on_primary_state`.
    pub(crate) fn already_served(&self, vs: &ViewerState) -> bool {
        // Coded shard actives carry the *home* block's play_seq and say
        // nothing about this cub's own primary progression — counting one
        // here would reject the double-forwarded redundancy copy of the
        // very record the shard serves, exactly when the home just died
        // and that copy is the stream's only survivor.
        self.active.values().any(|a| {
            !matches!(a.vs.kind, StreamKind::Coded { .. })
                && a.vs.instance == vs.instance
                && a.vs.play_seq >= vs.play_seq
        }) || self
            .retired_log
            .iter()
            .any(|(_, r)| r.instance == vs.instance && r.play_seq >= vs.play_seq)
    }

    fn schedule_insert_attempt(&mut self, sh: &mut Shared, at: SimTime) {
        if self.ins.arm_attempt() {
            sh.queue.schedule(
                at.max(sh.queue.now()),
                Event::InsertAttempt { cub: self.id },
            );
        }
    }

    /// The disk that should source the first requested block — and the
    /// pointer whose ownership windows gate the insertion.
    fn start_disk(&self, sh: &Shared, pending: &PendingStart) -> Option<DiskId> {
        sh.catalog
            .locate(pending.file, pending.from_block)
            .map(|loc| loc.disk)
    }

    /// Attempts to insert queued starts into currently-owned empty slots.
    pub fn on_insert_attempt(&mut self, sh: &mut Shared, now: SimTime) {
        self.ins.attempt_due();
        if self.failed {
            return;
        }
        let mut remaining: Vec<PendingStart> = Vec::new();
        let queue = self.ins.take_queue();
        for pending in queue {
            let Some(d0) = self.start_disk(sh, &pending) else {
                continue; // Unknown file or out-of-range block: drop it.
            };
            // We may insert via d0's pointer if d0 is ours, or if we are
            // the acting successor of d0's dead cub.
            let d0_cub = sh.params.stripe().cub_of(d0);
            let responsible = d0_cub == self.id
                || (self.ring.believes_failed(d0_cub) && self.acting_successor_of(d0_cub));
            if !responsible {
                continue; // Another cub will run this insertion.
            }
            let owned = sh.params.owned_slot_range(d0, now);
            let slot = owned.into_iter().find(|&s| self.view.believes_slot_free(s));
            match slot {
                Some(slot) => self.commit_insert(sh, now, pending, d0, slot),
                None => {
                    sh.tracer.record(
                        now,
                        self.id.raw(),
                        TraceEvent::InsertMiss {
                            viewer: pending.instance.viewer.raw(),
                            inc: pending.instance.incarnation,
                            disk: d0.raw(),
                        },
                    );
                    remaining.push(pending);
                }
            }
        }
        self.ins.requeue(remaining);
        if let Some(head) = self.ins.head().copied() {
            // Retry when the next ownership window opens for the head's
            // start disk.
            if let Some(d0) = self.start_disk(sh, &head) {
                let dt = sh.params.time_to_next_ownership(d0, now) + SimDuration::from_nanos(1);
                self.ins.arm_attempt();
                sh.queue
                    .schedule(now + dt, Event::InsertAttempt { cub: self.id });
            }
        }
    }

    fn commit_insert(
        &mut self,
        sh: &mut Shared,
        now: SimTime,
        pending: PendingStart,
        d0: DiskId,
        slot: SlotId,
    ) {
        let meta = sh.catalog.get(pending.file).copied().expect("file known");
        let vs = ViewerState {
            instance: pending.instance,
            client: pending.client,
            file: pending.file,
            position: pending.from_block,
            slot,
            play_seq: 0,
            bitrate: meta.bitrate,
            kind: StreamKind::Primary,
        };
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::InsertCommit {
                slot: slot.raw(),
                viewer: pending.instance.viewer.raw(),
                inc: pending.instance.incarnation,
                disk: d0.raw(),
            },
        );
        if let Some(omni) = sh.omniscient.as_mut() {
            omni.on_insert(vs, now);
        }
        if d0_is_local(sh, self.id, d0) {
            self.accept_service(sh, now, vs, d0);
        } else {
            // Acting-successor insertion for a dead start disk: service via
            // mirrors straight away.
            self.cover_failed_disk(sh, now, vs, d0);
        }
        // Commit: tell the controller (the insertion "becomes part of the
        // coherent hallucination when a message to that effect makes it to
        // at least one other machine").
        let first_send = sh.params.slot_send_time(d0, slot, now);
        sh.send_to_controllers(
            now,
            sh.cub_node(self.id),
            Message::InsertCommitted {
                instance: pending.instance,
                slot,
                file: pending.file,
                first_send,
            },
        );
        // Hasten propagation of the fresh insert.
        sh.queue.schedule(
            now + SimDuration::from_millis(1),
            Event::ForwardPass { cub: self.id },
        );
    }

    // --- Deadman protocol (§2.3) -------------------------------------------

    /// Periodic heartbeat to the successor.
    pub fn on_deadman_ping(&mut self, sh: &mut Shared, now: SimTime) {
        if self.failed {
            return;
        }
        if let Some(succ) = self.ring.ping_target() {
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::DeadmanPing { to: succ.raw() },
            );
            sh.send_control(
                now,
                sh.cub_node(self.id),
                sh.cub_node(succ),
                Message::DeadmanPing { from: self.id },
            );
        }
    }

    /// Periodic silence check on the predecessor.
    pub fn on_deadman_check(&mut self, sh: &mut Shared, now: SimTime) {
        if self.failed {
            return;
        }
        let Some((pred, silence)) = self.ring.poll_check(now, &ring_cfg(sh)) else {
            return;
        };
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::DeadmanDeclare {
                failed: pred.raw(),
                silence_ns: silence.as_nanos(),
            },
        );
        sh.metrics.failure_detections.push((now, pred.raw()));
        self.declare_failed(sh, now, pred);
        // Tell everyone (including the controller).
        let me = sh.cub_node(self.id);
        let notice = Message::FailureNotice { failed: pred };
        let num_cubs = self.ring.num_cubs();
        for c in 0..num_cubs {
            let target = CubId(c);
            if target != self.id && !self.ring.believes_failed(target) {
                sh.send_control(now, me, sh.cub_node(target), notice.clone());
            }
        }
        sh.send_to_controllers(now, me, notice);
    }

    fn on_failure_notice(&mut self, sh: &mut Shared, now: SimTime, failed: CubId) {
        if failed == self.id {
            // The ring declared this cub dead while it was stalled, and
            // the acting successor already covers its streams. Fence:
            // stop serving entirely rather than double-deliver until the
            // (offline) repair brings this cub back through a restripe.
            sh.tracer.record(
                now,
                self.id.raw(),
                TraceEvent::CubFenced { cub: self.id.raw() },
            );
            self.power_cut(now);
            let node = sh.cub_node(self.id);
            sh.net.fail_node(node);
            return;
        }
        self.declare_failed(sh, now, failed);
    }

    fn declare_failed(&mut self, sh: &mut Shared, now: SimTime, failed: CubId) {
        if self.ring.believes_failed(failed) || failed == self.id {
            return;
        }
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::FailureNotice {
                failed: failed.raw(),
            },
        );
        self.ring.declare_failed(failed, now);
        // §2.3 gap bridging: "If two or more consecutive cubs are failed,
        // the preceding living cub will send scheduling information to the
        // succeeding living cub." Re-send the advanced copy of every
        // recently serviced record whose next hop is now inside a dead
        // span that begins right after us; the acting successor covers the
        // span with mirror viewer states. Receipt is idempotent, so this
        // is safe even when the normal double-forwarded copies survived.
        let redrive: Vec<ViewerState> = self
            .retired_log
            .iter()
            .map(|&(_, vs)| vs.advanced(1))
            .filter(|next| {
                sh.catalog
                    .locate(next.file, next.position)
                    .is_some_and(|loc| {
                        self.ring.believes_failed(loc.cub)
                            && self.prev_living(loc.cub) == Some(self.id)
                    })
            })
            .collect();
        if !sh.cfg.gap_recovery {
            return self.takeover_if_acting_successor(sh, now, failed);
        }
        // Active entries already forwarded into what turned out to be the
        // dead window must be re-forwarded: clear their flag so the next
        // pass sends them to the new next-living successor.
        let mut reforward = false;
        for e in self.active.values_mut() {
            if !e.forwarded || e.dropped || e.vs.kind != StreamKind::Primary {
                continue;
            }
            let next = e.vs.advanced(1);
            let into_gap = sh
                .catalog
                .locate(next.file, next.position)
                .is_some_and(|loc| self.ring.believes_failed(loc.cub));
            if into_gap {
                e.forwarded = false;
                reforward = true;
            }
        }
        if reforward {
            sh.queue.schedule(
                now + SimDuration::from_millis(1),
                Event::ForwardPass { cub: self.id },
            );
        }
        if !redrive.is_empty() {
            let me = sh.cub_node(self.id);
            // Group by destination: the acting successor of each record's
            // dead cub (and its successor, for redundancy).
            for next in redrive {
                let loc = sh
                    .catalog
                    .locate(next.file, next.position)
                    .expect("filtered above");
                if let Some(succ) = self.next_living(loc.cub) {
                    if succ == self.id {
                        // Unreachable in practice (we precede the gap), but
                        // handle the two-cub ring degenerately.
                        continue;
                    }
                    sh.send_control(now, me, sh.cub_node(succ), Message::ViewerState(next));
                    if let Some(second) = self.next_living(succ) {
                        if second != self.id {
                            sh.send_control(
                                now,
                                me,
                                sh.cub_node(second),
                                Message::ViewerState(next),
                            );
                        }
                    }
                }
            }
        }
        self.takeover_if_acting_successor(sh, now, failed);
    }

    /// The acting-successor duties on a failure: promote redundant starts
    /// and convert shadows for the failed cub's disks into mirror service.
    fn takeover_if_acting_successor(&mut self, sh: &mut Shared, now: SimTime, failed: CubId) {
        if !self.acting_successor_of(failed) {
            return;
        }
        sh.tracer.record(
            now,
            self.id.raw(),
            TraceEvent::MirrorTakeover {
                failed_cub: failed.raw(),
            },
        );
        let stripe = sh.params.stripe();
        let catalog = &sh.catalog;
        self.ins.promote_where(|p| {
            catalog
                .get(p.file)
                .is_some_and(|m| stripe.cub_of(m.start_disk) == failed)
        });
        if self.ins.queued() > 0 {
            self.schedule_insert_attempt(sh, now + SimDuration::from_nanos(1));
        }
        // Re-drive shadowed schedule information addressed to *any* cub we
        // now cover. This matters when the dying cub was itself the acting
        // successor for an earlier failure: records it was advancing
        // internally die with it, and our shadows (deposited by the
        // double-forwarding) are the only surviving copies — exactly the
        // §4.1.1 argument for forwarding twice.
        let shadows: Vec<ViewerState> = self
            .shadows
            .values()
            .filter(|s| {
                sh.catalog
                    .locate(s.vs.file, s.vs.position)
                    .is_some_and(|loc| {
                        self.ring.believes_failed(loc.cub) && self.acting_successor_of(loc.cub)
                    })
            })
            .map(|s| s.vs)
            .collect();
        for vs in shadows {
            self.shadows.remove(&(vs.slot, vs.instance));
            self.on_primary_state(sh, now, vs);
        }
        // Double failure during catch-up: the dead cub may have been the
        // covering partner of a cub that just rejoined, holding records
        // addressed to the rejoiner that the rejoiner (down at forward
        // time) never saw. Our shadow is then the only surviving copy —
        // re-send it to the rejoiner. Receipt idempotence dedups the
        // common case where the rejoiner did get the record.
        let to_rejoiner: Vec<(ViewerState, SimTime)> = self
            .shadows
            .values()
            .filter(|s| {
                sh.catalog
                    .locate(s.vs.file, s.vs.position)
                    .is_some_and(|loc| {
                        loc.cub != self.id
                            && !self.ring.believes_failed(loc.cub)
                            && self.ring.recently_rejoined(loc.cub, now)
                    })
            })
            .map(|s| (s.vs, s.due))
            .collect();
        // The shadow's position is usually stale (its send time passed
        // while the record sat unrevived), so re-sending it verbatim would
        // either be discarded as a late arrival or replay a block the
        // mirrors already delivered. The shadow's recorded due time says
        // exactly how far behind it is: advance to the first position
        // whose nominal send time is still ahead and hand the record to
        // that position's owner — the same skip-to-reachable move the
        // §2.3 gap bridge makes, with the skipped blocks as bounded loss.
        let bpt = sh.params.block_play_time();
        let ring = self.ring.num_cubs();
        let me = sh.cub_node(self.id);
        for (vs, due) in to_rejoiner {
            let behind = now.saturating_since(due);
            let mut k = if behind == SimDuration::ZERO {
                0
            } else {
                (behind.as_nanos() / bpt.as_nanos()) as u32 + 1
            };
            for _ in 0..ring {
                let cand = vs.advanced(k);
                let Some(loc) = sh.catalog.locate(cand.file, cand.position) else {
                    break; // Past end-of-file: the stream was finishing.
                };
                if self.ring.believes_failed(loc.cub) {
                    k += 1; // Owner still dead: its block is lost; skip on.
                    continue;
                }
                if loc.cub == self.id {
                    self.on_primary_state(sh, now, cand);
                } else {
                    sh.send_control(now, me, sh.cub_node(loc.cub), Message::ViewerState(cand));
                }
                break;
            }
        }
    }

    /// Clears the viewer/schedule state every reset path discards: the
    /// bounded schedule view, shadowed records, queued insertions, and the
    /// retired log. Power-cut, restart, and restripe cut-over all call
    /// this and layer their site-specific extras on top.
    fn reset_viewer_state(&mut self) {
        self.view = ScheduleView::new();
        self.shadows.clear();
        self.ins.clear_queues();
        self.retired_log.clear();
    }

    /// Power-cut: the cub stops doing anything; its disks die with it.
    pub fn power_cut(&mut self, now: SimTime) {
        self.failed = true;
        for d in &mut self.disks {
            d.fail(now);
        }
        self.active.clear();
        self.by_key.clear();
        self.reset_viewer_state();
        self.buffer_bytes_in_use = 0;
    }

    // --- Online recovery ----------------------------------------------------

    /// Restarts a power-cut/fenced cub with empty schedule state. The disk
    /// contents (index, space maps) survive the crash — only the in-memory
    /// schedule is gone, which is the paper's point: "a cub can be
    /// rebooted... and rejoin" because the bounded view rebuilds from the
    /// ring. Everything protocol-visible is reset; the rejoin protocol
    /// (see `on_rejoin_request`) re-learns ring state from neighbours.
    pub fn restart(&mut self, now: SimTime, striped_cubs: u32) {
        self.failed = false;
        for d in &mut self.disks {
            d.revive(now);
        }
        self.active.clear();
        self.by_key.clear();
        self.reset_viewer_state();
        self.mirrors_created.clear();
        self.cache_resident.clear();
        self.buffer_bytes_in_use = 0;
        self.ins.reset();
        // A restarted process knows nothing about who is down; it assumes
        // the full striped ring is alive (spares stay marked failed — they
        // are not ring members) and learns real failures from RejoinAcks.
        self.ring.restart(now, striped_cubs);
        self.rejoined_at = Some(now);
    }

    // --- Live-restripe cut-over support -------------------------------------

    /// Read access to the block index (the restriper's layout digest).
    pub(crate) fn index(&self) -> &BlockIndex {
        &self.index
    }

    /// Removes the primary index entry for a block that migrated to another
    /// disk during a live restripe. The extent's space is not reclaimed
    /// (the space map is append-only, like the real system's restriper
    /// which reformats disks offline); only the lookup must stop answering.
    pub(crate) fn remove_primary_entry(&mut self, disk: DiskId, file: FileId, block: BlockNum) {
        self.index.remove_primary(disk, file, block);
    }

    /// Drops every mirror extent and resets the secondary space maps: the
    /// cut-over re-derives mirror placement wholesale for the new stripe.
    pub(crate) fn clear_secondary_layout(&mut self) {
        self.index.clear_all_secondary();
        for s in &mut self.space {
            s.clear_secondary();
        }
    }

    /// Marks `cub` believed-failed without the declaration side effects
    /// (construction-time marking of spare cubs, which are not ring
    /// members until a restripe cut-over activates them).
    pub(crate) fn mark_believed_failed(&mut self, cub: CubId) {
        self.ring.mark_believed_failed(cub);
    }

    /// Installs the restriper's post-cut-over ring map: belief vectors grow
    /// to the new ring size and every member's liveness is set from ground
    /// truth (the cut-over barrier is the one moment the restriper knows
    /// it). Deadman baselines restart from this instant.
    pub(crate) fn set_ring_state(&mut self, failed: &[bool], now: SimTime) {
        self.ring.set_ring_state(failed, now);
    }

    /// The schedule half of a live-restripe cut-over: kill every service
    /// that has not yet gone out (its record carries old-geometry slot
    /// assignments), let in-flight transmissions finish, and prevent any
    /// old-incarnation record from propagating by marking everything
    /// forwarded and fencing the old instances with deschedules.
    pub(crate) fn cutover_reset(
        &mut self,
        now: SimTime,
        fences: &[Deschedule],
        hold_until: SimTime,
    ) {
        let tokens: Vec<ServiceToken> = self.active.keys().copied().collect();
        for token in tokens {
            let entry = self.active.get_mut(&token).expect("token just listed");
            if !entry.sent {
                entry.dropped = true;
            }
            entry.forwarded = true;
            if entry.finished() {
                self.reclaim(now, token, None);
            }
        }
        self.reset_viewer_state();
        for &d in fences {
            self.view.apply_deschedule(d, now, hold_until);
        }
        self.mirrors_created.clear();
        self.eof_sent.clear();
        self.ring.clear_handback();
    }
}

fn d0_is_local(sh: &Shared, me: CubId, d0: DiskId) -> bool {
    sh.params.stripe().cub_of(d0) == me
}

/// The `(slot, viewer, inc)` triple most trace events carry.
fn vkey(vs: &ViewerState) -> (u32, u64, u32) {
    (
        vs.slot.raw(),
        vs.instance.viewer.raw(),
        vs.instance.incarnation,
    )
}
