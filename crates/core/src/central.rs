//! The centralized-scheduler baseline (paper §3.3).
//!
//! "In a centrally scheduled system, the controller would have to track the
//! entire schedule. … the controller would have to maintain a send rate of
//! 3-4 Mbytes/s of control traffic through the TCP stack to the roughly
//! 1000 cubs. Reliable and timely transmission of this much data through
//! TCP, particularly to that many destinations, is probably beyond the
//! capability of the class of personal computers used to construct a Tiger
//! system."
//!
//! This module materializes that design so the scalability bench can put
//! real numbers next to the distributed implementation: a controller that
//! owns the whole [`DiskSchedule`] and streams one per-block command to the
//! relevant cub for every slot crossing.

use tiger_layout::ids::ViewerInstance;
use tiger_layout::{BlockNum, FileId, ViewerId};
use tiger_sched::{DiskSchedule, ScheduleParams, SlotId, StreamKind, ViewerState};
use tiger_sim::{Bandwidth, SimDuration, SimTime};

use crate::cpu::CpuModel;
use crate::msg::FRAME_BYTES;

/// Per-block command size in the centralized design (§3.3: "If the message
/// that the controller sends instructing a cub to deliver a block to a
/// viewer is 100 bytes long…").
pub const COMMAND_BYTES: u64 = 100;

/// Bytes per second the central controller must transmit to keep `streams`
/// streams fed, with one `COMMAND_BYTES` command per stream per block play
/// time, plus TCP framing per command.
pub fn central_control_send_rate(streams: u64, block_play_time: SimDuration) -> f64 {
    (streams as f64) * (COMMAND_BYTES + FRAME_BYTES) as f64 / block_play_time.as_secs_f64()
}

/// Statistics from a centralized-controller window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CentralStats {
    /// Streams being served.
    pub streams: u32,
    /// Controller control-plane send rate, bytes/s.
    pub ctrl_bytes_per_sec: f64,
    /// Controller messages/s.
    pub ctrl_msgs_per_sec: f64,
    /// Modelled controller CPU load (saturates at 1.0).
    pub ctrl_cpu: f64,
}

/// A centrally scheduled Tiger: the controller owns the global schedule
/// and drives every cub with per-block commands.
#[derive(Debug)]
pub struct CentralSystem {
    params: ScheduleParams,
    schedule: DiskSchedule,
    cpu: CpuModel,
    next_viewer: u64,
}

impl CentralSystem {
    /// Creates an empty centrally-scheduled system.
    pub fn new(params: ScheduleParams) -> Self {
        CentralSystem {
            schedule: DiskSchedule::new(params.clone()),
            params,
            cpu: CpuModel::pentium133(),
            next_viewer: 0,
        }
    }

    /// The schedule parameters.
    pub fn params(&self) -> &ScheduleParams {
        &self.params
    }

    /// Starts a viewer: the controller scans its global schedule for the
    /// first free slot after the file's start-disk pointer and fills it.
    /// Returns the slot, or `None` when the schedule is full.
    pub fn start_viewer(
        &mut self,
        file: FileId,
        bitrate: Bandwidth,
        now: SimTime,
    ) -> Option<SlotId> {
        let from = self.params.slot_under_disk(tiger_layout::DiskId(0), now);
        let slot = self.schedule.first_free_from(from)?;
        let instance = ViewerInstance {
            viewer: ViewerId(self.next_viewer),
            incarnation: 0,
        };
        self.next_viewer += 1;
        let vs = ViewerState {
            instance,
            client: 0,
            file,
            position: BlockNum(0),
            slot,
            play_seq: 0,
            bitrate,
            kind: StreamKind::Primary,
        };
        self.schedule
            .insert(vs, now)
            .expect("first_free_from returned a free slot");
        Some(slot)
    }

    /// Stops the viewer in `slot`.
    pub fn stop_viewer(&mut self, slot: SlotId) -> bool {
        match self.schedule.get(slot).map(|e| e.state.instance) {
            Some(instance) => self.schedule.remove(slot, instance).is_some(),
            None => false,
        }
    }

    /// Streams currently scheduled.
    pub fn streams(&self) -> u32 {
        self.schedule.occupancy()
    }

    /// Simulates one measurement window: the controller emits one command
    /// per occupied slot per block play time and the model reports its
    /// load. (The command stream is deterministic, so this is computed in
    /// closed form rather than event-by-event.)
    pub fn window_stats(&self) -> CentralStats {
        let streams = self.schedule.occupancy();
        let bps = central_control_send_rate(u64::from(streams), self.params.block_play_time());
        let msgs = f64::from(streams) / self.params.block_play_time().as_secs_f64();
        CentralStats {
            streams,
            ctrl_bytes_per_sec: bps,
            ctrl_msgs_per_sec: msgs,
            // Every command is controller work, unlike the distributed
            // design where the controller only sees start/stop requests.
            ctrl_cpu: self.cpu.controller_load(0.0, msgs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiger_layout::StripeConfig;
    use tiger_sim::ByteSize;

    fn params(cubs: u32) -> ScheduleParams {
        ScheduleParams::derive(
            StripeConfig::new(cubs, 4, 4),
            SimDuration::from_secs(1),
            ByteSize::from_bytes(250_000),
            SimDuration::from_nanos(92_954_226),
            Bandwidth::from_mbit_per_sec(135),
        )
    }

    #[test]
    fn paper_scalability_number() {
        // §3.3: 40,000 streams at 100 bytes/command ≈ 4 MB/s of control
        // sends (we add framing, so a bit more).
        let rate = central_control_send_rate(40_000, SimDuration::from_secs(1));
        assert!((4.0e6..6.0e6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn start_stop_lifecycle() {
        let mut c = CentralSystem::new(params(4));
        let slot = c
            .start_viewer(FileId(0), Bandwidth::from_mbit_per_sec(2), SimTime::ZERO)
            .expect("capacity available");
        assert_eq!(c.streams(), 1);
        assert!(c.stop_viewer(slot));
        assert!(!c.stop_viewer(slot));
        assert_eq!(c.streams(), 0);
    }

    #[test]
    fn controller_load_grows_with_streams() {
        let mut c = CentralSystem::new(params(14));
        let mut prev = c.window_stats().ctrl_cpu;
        for _ in 0..4 {
            for _ in 0..100 {
                c.start_viewer(FileId(0), Bandwidth::from_mbit_per_sec(2), SimTime::ZERO);
            }
            let cur = c.window_stats();
            assert!(cur.ctrl_cpu > prev, "load must grow with streams");
            prev = cur.ctrl_cpu;
        }
        // In contrast, the distributed controller's load is constant in
        // stream count (see CpuModel::controller_load tests).
    }

    #[test]
    fn schedule_full_rejects() {
        let p = params(2);
        let cap = p.capacity();
        let mut c = CentralSystem::new(p);
        for _ in 0..cap {
            assert!(c
                .start_viewer(FileId(0), Bandwidth::from_mbit_per_sec(2), SimTime::ZERO)
                .is_some());
        }
        assert!(c
            .start_viewer(FileId(0), Bandwidth::from_mbit_per_sec(2), SimTime::ZERO)
            .is_none());
    }
}
