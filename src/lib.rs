//! # Tiger: distributed schedule management for a striped video fileserver
//!
//! A from-scratch Rust reproduction of *Distributed Schedule Management in
//! the Tiger Video Fileserver* (Bolosky, Fitzgerald, Douceur — SOSP 1997):
//! the "coherent hallucination" protocol by which a ring of commodity
//! machines ("cubs") jointly maintain a global streaming schedule that no
//! machine ever materializes, plus every substrate it runs on — striped
//! and declustered-mirror data layout, a calibrated multi-zone disk model,
//! a switched (ATM-like) network, the single-bitrate disk schedule and the
//! multiple-bitrate network schedule, failure detection and mirror
//! takeover, and the centralized baseline the paper argues against.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel
//! * [`disk`] — multi-zone disk drive model
//! * [`net`] — switched network model
//! * [`layout`] — striping, declustered mirroring, block index, restriper
//! * [`sched`] — schedules, viewer-state records, bounded views
//! * [`faults`] — deterministic fault plans, injectors, and invariants
//! * [`core`] — cubs, controller, clients, the distributed protocol
//! * [`trace`] — ring-buffer protocol event tracing and timeline tooling
//! * [`workload`] — workload generators and §5 experiment drivers
//! * [`bench`] — experiment fleet, bench runner, and snapshot tooling
//!
//! ## Quick start
//!
//! ```
//! use tiger::core::{TigerConfig, TigerSystem};
//! use tiger::sim::{Bandwidth, SimDuration, SimTime};
//!
//! let mut cfg = TigerConfig::small_test();
//! cfg.disk = cfg.disk.without_blips();
//! let mut sys = TigerSystem::new(cfg);
//! let film = sys.add_file(Bandwidth::from_mbit_per_sec(2), SimDuration::from_secs(10));
//! let client = sys.add_client();
//! sys.request_start(SimTime::from_millis(50), client, film);
//! sys.run_until(SimTime::from_secs(30));
//! assert_eq!(sys.client_report(client).completed_viewers, 1);
//! ```

pub use tiger_bench as bench;
pub use tiger_core as core;
pub use tiger_disk as disk;
pub use tiger_faults as faults;
pub use tiger_layout as layout;
pub use tiger_net as net;
pub use tiger_sched as sched;
pub use tiger_sim as sim;
pub use tiger_trace as trace;
pub use tiger_workload as workload;
